"""Scalarized objectives and the ObjectiveBackend wrapper.

The wrapper's contract: every scalar an engine *compares* is the
scalarized objective, every schedule it *decodes* is the real one, and
the delta tier's branch-and-bound stays exact — a pruned probe under a
scalarized cutoff is exactly a probe that would not have improved the
scalar.
"""

import numpy as np
import pytest

from repro.optim import ParetoTracker, SAConfig, TabuConfig, run_sa, run_tabu
from repro.optim.evaluation import EvaluationService
from repro.optim.objective import (
    MAKESPAN,
    ObjectiveBackend,
    WeightedObjective,
    resolve_objective,
    weighted,
)
from repro.schedule.operations import random_valid_string
from repro.workloads import WorkloadSpec, build_workload

OBJ = "weighted:0.01:0.02"


@pytest.fixture
def workload():
    return build_workload(WorkloadSpec(num_tasks=12, num_machines=3, seed=7))


def strings(workload, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        random_valid_string(workload.graph, workload.num_machines, rng)
        for _ in range(n)
    ]


class TestResolve:
    def test_makespan_is_the_singleton_identity(self):
        obj = resolve_objective("makespan")
        assert obj is MAKESPAN and obj.is_makespan
        assert obj.scalarize(7.0, 1e9) == 7.0
        assert obj.span_cutoff(5.0, 1e9) == 5.0

    def test_weighted_string_form(self):
        obj = resolve_objective("weighted:0.7:0.3")
        assert obj == weighted(0.7, 0.3)
        assert not obj.is_makespan
        assert obj.scalarize(100.0, 10.0) == pytest.approx(73.0)
        # name round-trips through the parser (the JSON/CLI contract)
        assert resolve_objective(obj.name) == obj

    def test_instances_pass_through(self):
        obj = weighted(1.0, 2.0)
        assert resolve_objective(obj) is obj
        assert resolve_objective(MAKESPAN) is MAKESPAN

    @pytest.mark.parametrize(
        "bad",
        ["nope", "weighted:1", "weighted:a:b", "weighted:1:2:3", ""],
    )
    def test_bad_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_objective(bad)

    def test_non_strings_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            resolve_objective(None)


class TestWeightedObjective:
    def test_weight_validation(self):
        with pytest.raises(ValueError, match="w_makespan"):
            weighted(-1.0, 0.5)
        with pytest.raises(ValueError, match="w_cost"):
            weighted(0.5, float("nan"))
        with pytest.raises(ValueError, match="at least one"):
            weighted(0.0, 0.0)

    def test_scalarize_arrays_matches_scalar(self):
        obj = weighted(0.3, 0.7)
        spans = np.array([10.0, 20.0, 30.0])
        costs = np.array([1.0, 2.0, 3.0])
        assert obj.scalarize_arrays(spans, costs).tolist() == [
            obj.scalarize(s, c) for s, c in zip(spans, costs)
        ]

    def test_span_cutoff_inverts_the_scalar(self):
        obj = weighted(2.0, 0.5)
        cost = 10.0
        cutoff = 100.0
        span_bound = obj.span_cutoff(cutoff, cost)
        # a span exactly at the bound scalarizes to (just above) cutoff
        assert obj.scalarize(span_bound, cost) >= cutoff
        assert obj.span_cutoff(float("inf"), cost) == float("inf")

    def test_span_cutoff_with_zero_makespan_weight(self):
        obj = WeightedObjective(0.0, 1.0)
        # cost already beats the cutoff: nothing should be pruned
        assert obj.span_cutoff(100.0, 50.0) == float("inf")
        # cost alone misses the cutoff: every span is a dead end
        assert obj.span_cutoff(100.0, 200.0) == -float("inf")


class TestObjectiveBackend:
    def service(self, workload, **kw):
        kw.setdefault("platform", "spot")
        kw.setdefault("objective", OBJ)
        return EvaluationService(workload, **kw)

    def test_default_service_is_unwrapped(self, workload):
        svc = EvaluationService(workload)
        assert not isinstance(svc.backend, ObjectiveBackend)
        svc = EvaluationService(workload, platform="spot")
        assert not isinstance(svc.backend, ObjectiveBackend)

    def test_wrapped_when_objective_or_pareto(self, workload):
        assert isinstance(
            self.service(workload).backend, ObjectiveBackend
        )
        svc = EvaluationService(workload, pareto=ParetoTracker())
        assert isinstance(svc.backend, ObjectiveBackend)
        assert svc.cost_model.is_free  # uniform: zero billing table

    def test_scalar_is_objective_schedule_is_real(self, workload):
        svc = self.service(workload)
        (s,) = strings(workload, 1)
        score = svc.score_of(s)  # real (makespan, cost), uncounted
        assert svc.string_makespan(s) == pytest.approx(
            svc.scalarize(score.makespan, score.cost)
        )
        # decoded schedule keeps the true makespan, not the scalar
        assert svc.schedule_of(s).makespan == score.makespan

    def test_delta_tier_matches_full_eval(self, workload):
        svc = self.service(workload, prefer_batch=False)
        base, probe = strings(workload, 2, seed=3)
        state = svc.prepare(base.order, base.machines)
        got = svc.evaluate_delta(probe.order, probe.machines, 0, state)
        assert got == pytest.approx(
            svc.string_makespan(probe), rel=0, abs=0
        )

    def test_delta_cutoff_prunes_exactly_non_improving(self, workload):
        svc = self.service(workload, prefer_batch=False)
        base, *probes = strings(workload, 12, seed=4)
        cutoff = svc.string_makespan(base)
        for p in probes:
            full = svc.string_makespan(p)
            state2 = svc.prepare(base.order, base.machines)
            got = svc.evaluate_delta(
                p.order, p.machines, 0, state2, cutoff=cutoff
            )
            if full < cutoff:
                assert got == full  # improving probes come back exact
            else:
                assert got == float("inf")  # the rest are pruned

    def test_batch_columns_scalarized(self, workload):
        svc = self.service(workload, prefer_batch=True)
        assert svc.is_vectorized  # spot has no boot: kernel stays on
        ss = strings(workload, 8, seed=5)
        batch = svc.batch_string_makespans(ss)
        assert batch == [
            svc.scalarize(sc.makespan, sc.cost)
            for sc in map(svc.score_of, ss)
        ]

    def test_every_scored_point_offered_to_pareto(self, workload):
        tracker = ParetoTracker()
        svc = self.service(workload, pareto=tracker)
        ss = strings(workload, 6, seed=6)
        for s in ss:
            svc.string_makespan(s)
        svc.batch_string_makespans(ss)
        assert tracker.offers == 12
        assert all(
            not tracker.dominated(p.makespan - 1e-9, p.cost - 1e-9)
            for p in tracker.front
        )


class TestCostAwareEngines:
    """SA and tabu optimise the weighted scalar without engine changes."""

    @pytest.mark.parametrize(
        "cfg_cls,run",
        [(SAConfig, run_sa), (TabuConfig, run_tabu)],
        ids=["sa", "tabu"],
    )
    def test_cost_weight_buys_cheaper_schedules(self, workload, cfg_cls, run):
        def best_score(objective):
            svc = EvaluationService(
                workload,
                platform="spot",
                objective=objective,
                prefer_batch=False,
            )
            res = run(
                workload,
                cfg_cls(
                    seed=1,
                    max_iterations=600,
                    platform="spot",
                    objective=objective,
                ),
                service=svc,
            )
            return svc.score_of(res.best_string)

        span_only = best_score("makespan")
        cost_heavy = best_score(
            f"weighted:{0.2 / span_only.makespan}:{0.8 / span_only.cost}"
        )
        assert cost_heavy.cost < span_only.cost

    def test_configs_validate_objective(self):
        with pytest.raises(ValueError):
            SAConfig(objective="weighted:oops")
        with pytest.raises(ValueError):
            TabuConfig(platform="nope")
