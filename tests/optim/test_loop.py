"""Units for the optim core: BestTracker, TrajectoryRecorder,
ObserverBus and the SearchLoop driver."""

import pytest

from repro.optim import (
    BestTracker,
    ObserverBus,
    SearchLoop,
    StepOutcome,
    StopPolicy,
    TrajectoryRecorder,
)


class Solution:
    """A copyable marker so tests can tell copies from originals."""

    def __init__(self, tag):
        self.tag = tag
        self.copies = 0

    def copy(self):
        self.copies += 1
        return Solution(self.tag)


class TestBestTracker:
    def test_seed_then_strict_improvement(self):
        t = BestTracker()
        s = Solution("a")
        t.seed(10.0, s)
        assert t.best_cost == 10.0 and t.stall == 0
        assert t.update(9.0, Solution("b")) is True
        assert t.best_cost == 9.0 and t.stall == 0

    def test_tie_is_not_improvement(self):
        t = BestTracker()
        t.seed(10.0, Solution("a"))
        assert t.update(10.0, Solution("b")) is False
        assert t.stall == 1
        assert t.best.tag == "a"

    def test_stall_resets_on_improvement(self):
        t = BestTracker()
        t.seed(10.0, Solution("a"))
        t.update(11.0, Solution("b"))
        t.update(12.0, Solution("c"))
        assert t.stall == 2
        t.update(5.0, Solution("d"))
        assert t.stall == 0

    def test_best_is_a_copy(self):
        t = BestTracker()
        s = Solution("a")
        t.seed(10.0, s)
        assert t.best is not s
        assert s.copies == 1
        w = Solution("b")
        t.update(20.0, w)  # no improvement -> no copy
        assert w.copies == 0

    def test_custom_copy(self):
        t = BestTracker(copy=lambda x: x)
        s = Solution("a")
        t.seed(1.0, s)
        assert t.best is s

    def test_best_before_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            BestTracker().best

    def test_update_without_seed_starts_from_infinity(self):
        t = BestTracker(copy=lambda x: x)
        assert t.update(1e12, Solution("a")) is True


class TestTrajectoryRecorder:
    def test_records_accumulate_in_order(self):
        r = TrajectoryRecorder()
        r.record(1, 10.0, 10.0, 0.1, 5)
        r.record(2, 9.0, 9.0, 0.2, 11, num_selected=3, mean_goodness=0.5)
        assert len(r.trace) == 2
        assert r.trace.best_makespans() == [10.0, 9.0]
        assert r.trace[1].num_selected == 3
        assert r.trace[1].mean_goodness == 0.5
        assert r.trace[1].evaluations == 11

    def test_non_increasing_iterations_rejected(self):
        r = TrajectoryRecorder()
        r.record(1, 1.0, 1.0, 0.0, 0)
        with pytest.raises(ValueError, match="increase"):
            r.record(1, 1.0, 1.0, 0.0, 0)


class TestObserverBus:
    def test_notifies_in_subscription_order(self):
        seen = []
        bus = ObserverBus(
            [
                lambda rec, s: seen.append(("a", rec.iteration)),
                lambda rec, s: seen.append(("b", rec.iteration)),
            ]
        )
        rec = TrajectoryRecorder().record(1, 1.0, 1.0, 0.0, 0)
        bus.notify(rec, None)
        assert seen == [("a", 1), ("b", 1)]

    def test_empty_bus_is_a_noop(self):
        bus = ObserverBus()
        assert len(bus) == 0
        rec = TrajectoryRecorder().record(1, 1.0, 1.0, 0.0, 0)
        bus.notify(rec, None)  # must not raise


class TestSearchLoop:
    def test_trace_evaluations_sampled_per_iteration(self):
        evals = {"n": 0}

        def step(iteration):
            evals["n"] += 10
            return StepOutcome(cost=100.0 - iteration, candidate=Solution("x"))

        loop = SearchLoop(
            stop=StopPolicy(max_iterations=3),
            evaluations=lambda: evals["n"],
        )
        out = loop.run(1000.0, Solution("init"), step)
        assert [r.evaluations for r in out.trace.records] == [10, 20, 30]

    def test_observer_payload_defaults_to_candidate(self):
        payloads = []

        def step(iteration):
            return StepOutcome(cost=1.0, candidate=f"cand{iteration}")

        loop = SearchLoop(
            stop=StopPolicy(max_iterations=2),
            observers=[lambda rec, p: payloads.append(p)],
            copy=lambda s: s,
        )
        loop.run(10.0, "init", step)
        assert payloads == ["cand1", "cand2"]

    def test_explicit_payload_wins(self):
        payloads = []

        def step(iteration):
            return StepOutcome(cost=1.0, candidate="cand", payload="shown")

        loop = SearchLoop(
            stop=StopPolicy(max_iterations=1),
            observers=[lambda rec, p: payloads.append(p)],
            copy=lambda s: s,
        )
        loop.run(10.0, "init", step)
        assert payloads == ["shown"]

    def test_best_and_trace_are_consistent(self):
        costs = [5.0, 3.0, 4.0, 2.0, 6.0]

        def step(iteration):
            return StepOutcome(
                cost=costs[iteration - 1], candidate=Solution(iteration)
            )

        loop = SearchLoop(stop=StopPolicy(max_iterations=5))
        out = loop.run(10.0, Solution(0), step)
        assert out.best_cost == 2.0
        assert out.best.tag == 4
        assert out.trace.best_makespans() == [5.0, 3.0, 3.0, 2.0, 2.0]
        assert out.trace.current_makespans() == costs

    def test_initial_solution_survives_non_improving_run(self):
        loop = SearchLoop(stop=StopPolicy(max_iterations=3))
        out = loop.run(
            1.0,
            Solution("init"),
            lambda i: StepOutcome(cost=50.0, candidate=Solution("worse")),
        )
        assert out.best_cost == 1.0
        assert out.best.tag == "init"
