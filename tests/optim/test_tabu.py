"""Behavioural tests for the tabu-search engine."""

import pytest

from repro.optim import TabuConfig, TabuSearch, run_tabu
from repro.optim.evaluation import EvaluationService
from repro.schedule import Simulator, is_valid_for, verify_schedule
from repro.schedule.operations import random_valid_string


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"neighborhood_size": 0}, "neighborhood_size"),
            ({"tenure": -1}, "tenure"),
            ({"reassign_prob": -0.1}, "reassign_prob"),
            ({"max_iterations": -1}, "max_iterations"),
            ({"time_limit": -1.0}, "time_limit"),
            ({"stall_iterations": 0}, "stall_iterations"),
            ({"network": ""}, "network"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            TabuConfig(**kwargs)


class TestBasicRun:
    def test_valid_verified_best(self, tiny_workload):
        res = run_tabu(tiny_workload, TabuConfig(seed=1, max_iterations=25))
        assert is_valid_for(res.best_string, tiny_workload.graph)
        verify_schedule(tiny_workload, res.best_schedule)
        assert res.best_makespan == pytest.approx(
            Simulator(tiny_workload).string_makespan(res.best_string)
        )

    def test_trace_and_counters(self, tiny_workload):
        cfg = TabuConfig(seed=1, max_iterations=20, neighborhood_size=10)
        res = run_tabu(tiny_workload, cfg)
        assert res.iterations == 20
        assert len(res.trace) == 20
        assert res.stopped_by == "iterations"
        # 1 initial + neighborhood_size per iteration
        assert res.evaluations == 1 + 20 * 10
        assert res.best_makespan == min(res.trace.best_makespans())

    def test_deterministic_per_seed(self, tiny_workload):
        a = run_tabu(tiny_workload, TabuConfig(seed=4, max_iterations=15))
        b = run_tabu(tiny_workload, TabuConfig(seed=4, max_iterations=15))
        assert a.best_makespan == b.best_makespan
        assert a.best_string == b.best_string
        assert a.trace.current_makespans() == b.trace.current_makespans()

    def test_improves_over_initial(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        start = Simulator(tiny_workload).string_makespan(init)
        res = run_tabu(
            tiny_workload, TabuConfig(seed=1, max_iterations=40), initial=init
        )
        assert res.best_makespan <= start

    def test_initial_not_mutated(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        before = init.pairs()
        run_tabu(
            tiny_workload, TabuConfig(seed=1, max_iterations=10), initial=init
        )
        assert init.pairs() == before

    def test_admissible_counts_bounded_by_neighborhood(self, tiny_workload):
        cfg = TabuConfig(seed=2, max_iterations=30, neighborhood_size=8)
        res = run_tabu(tiny_workload, cfg)
        assert all(0 <= c <= 8 for c in res.trace.selected_counts())


class TestStopping:
    def test_stops_by_time(self, tiny_workload):
        res = run_tabu(
            tiny_workload,
            TabuConfig(seed=1, max_iterations=10**8, time_limit=0.05),
        )
        assert res.stopped_by == "time"

    def test_stops_by_stall(self, tiny_workload):
        res = run_tabu(
            tiny_workload,
            TabuConfig(seed=1, max_iterations=10**6, stall_iterations=5),
        )
        assert res.stopped_by == "stall"


class TestTabuMechanics:
    def test_tenure_blocks_immediate_revisit(self, tiny_workload):
        """With a huge tenure and aspiration impossible to trigger, the
        engine must keep choosing *different* subtasks while admissible
        ones remain (the attribute list works)."""
        moved = []
        cfg = TabuConfig(
            seed=3,
            max_iterations=4,
            neighborhood_size=64,
            tenure=10**6,
        )

        class Spy(TabuSearch):
            pass

        res = Spy(cfg).run(
            tiny_workload,
            observers=[lambda rec, s: moved.append(s.pairs())],
        )
        assert res.iterations == 4
        # consecutive committed strings differ (the search keeps moving)
        assert len({p for p in moved}) >= 2

    def test_zero_tenure_disables_the_list(self, tiny_workload):
        """tenure=0 expires attributes instantly: every candidate is
        admissible every iteration."""
        cfg = TabuConfig(
            seed=5, max_iterations=12, neighborhood_size=6, tenure=0
        )
        res = run_tabu(tiny_workload, cfg)
        assert res.trace.selected_counts() == [6] * 12

    def test_batch_path_goes_through_evaluation_service(
        self, tiny_workload, monkeypatch
    ):
        """The acceptance criterion: neighborhoods are scored via
        EvaluationService.batch_string_makespans, never by direct
        BatchBackend calls."""
        calls = {"n": 0, "sizes": []}
        original = EvaluationService.batch_string_makespans

        def spy(self, strings, validate=True):
            calls["n"] += 1
            calls["sizes"].append(len(strings))
            return original(self, strings, validate=validate)

        monkeypatch.setattr(
            EvaluationService, "batch_string_makespans", spy
        )
        cfg = TabuConfig(seed=1, max_iterations=7, neighborhood_size=9)
        run_tabu(tiny_workload, cfg)
        assert calls["n"] == 7
        assert calls["sizes"] == [9] * 7


class TestNicBackend:
    def test_optimises_under_nic(self, tiny_workload):
        from repro.extensions.contention import ContentionSimulator

        res = run_tabu(
            tiny_workload,
            TabuConfig(seed=3, max_iterations=10, network="nic"),
        )
        assert res.best_makespan == pytest.approx(
            ContentionSimulator(tiny_workload).string_makespan(
                res.best_string
            )
        )


class TestFallback:
    def test_all_tabu_neighborhood_still_moves(self, tiny_workload):
        """When every candidate is tabu and none aspirates, the overall
        best candidate is committed anyway (no deadlock)."""
        cfg = TabuConfig(
            seed=1, max_iterations=40, tenure=10**6, neighborhood_size=3
        )
        res = run_tabu(tiny_workload, cfg)
        counts = res.trace.selected_counts()
        assert 0 in counts  # the fallback branch really ran
        assert res.iterations == 40  # and the search kept going


class TestNoopFreeNeighborhoods:
    def test_every_committed_move_changes_the_string(self, tiny_workload):
        """Candidates are identity-free, so the incumbent must change
        every iteration — a no-op can never win at a local optimum."""
        seen = []
        run_tabu(
            tiny_workload,
            TabuConfig(seed=6, max_iterations=30),
            observers=[lambda rec, s: seen.append(s.pairs())],
        )
        assert len(seen) == 30
        previous = None
        for pairs in seen:
            assert pairs != previous
            previous = pairs
