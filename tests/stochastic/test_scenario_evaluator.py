"""ScenarioEvaluator scoring: bit-identity, parity, backend contract."""

import numpy as np
import pytest

from repro.optim import EvaluationService
from repro.optim.objective import resolve_objective
from repro.schedule.backend import make_simulator
from repro.schedule.operations import random_valid_string
from repro.stochastic import (
    DETERMINISTIC,
    ScenarioBackend,
    ScenarioEvaluator,
    sample_scenarios,
)
from repro.workloads import small_workload

NETWORKS = ("contention-free", "nic")


def _strings(w, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        random_valid_string(w.graph, w.num_machines, rng) for _ in range(n)
    ]


@pytest.mark.parametrize("network", NETWORKS)
def test_single_deterministic_scenario_is_bit_identical(network):
    """S=1 + deterministic distribution == the plain batch scoring path."""
    w = small_workload(seed=1)
    ev = ScenarioEvaluator(
        sample_scenarios(w, DETERMINISTIC, scenarios=1), network=network
    )
    strings = _strings(w, 8)
    got = ev.string_matrix(strings)
    assert got.shape == (1, 8)
    expected = EvaluationService(
        w, network, prefer_batch=True
    ).batch_string_makespans(strings)
    assert got[0].tolist() == list(expected)  # ==, not approx


@pytest.mark.parametrize("network", NETWORKS)
def test_vectorized_matches_sequential_fallback(network):
    """Kernel-built scenario rows == scalar simulator per scenario."""
    w = small_workload(seed=2)
    scen = sample_scenarios(w, "lognormal:0.3", scenarios=4, seed=5)
    fast = ScenarioEvaluator(scen, network=network, prefer_batch=True)
    slow = ScenarioEvaluator(scen, network=network, prefer_batch=False)
    assert fast.is_vectorized and not slow.is_vectorized
    strings = _strings(w, 5)
    np.testing.assert_allclose(
        fast.string_matrix(strings), slow.string_matrix(strings)
    )


@pytest.mark.parametrize("network", NETWORKS)
def test_rows_match_scalar_simulation_of_each_scenario(network):
    """Row s is exactly the scalar simulator on scenario s's matrices."""
    w = small_workload(seed=3)
    scen = sample_scenarios(w, "uniform:0.4", scenarios=3, seed=1)
    ev = ScenarioEvaluator(scen, network=network)
    (s,) = _strings(w, 1)
    got = ev.samples_string(s)
    for i in range(3):
        sim = make_simulator(scen.workload_for(i), network)
        expected = sim.string_makespan(s)
        assert got[i] == pytest.approx(expected, rel=1e-12)


def test_samples_equals_matrix_column():
    w = small_workload(seed=1)
    ev = ScenarioEvaluator(sample_scenarios(w, "uniform:0.2", 6, seed=2))
    (s,) = _strings(w, 1)
    col = ev.string_matrix([s])[:, 0]
    assert (ev.samples_string(s) == col).all()


def test_invalid_string_is_rejected():
    w = small_workload(seed=1)
    ev = ScenarioEvaluator(sample_scenarios(w, "uniform:0.2", 2, seed=0))
    (s,) = _strings(w, 1)
    bad_order = list(reversed(s.order))
    with pytest.raises(ValueError):
        ev.matrix([bad_order], [list(s.machines)])


# ----------------------------------------------------------------------
# ScenarioBackend
# ----------------------------------------------------------------------


def _backend(w, objective="quantile:0.75", S=5):
    ev = ScenarioEvaluator(sample_scenarios(w, "lognormal:0.25", S, seed=3))
    nominal = make_simulator(w, "contention-free")
    return ScenarioBackend(nominal, ev, resolve_objective(objective)), ev


def test_backend_scalars_are_the_objectives_reduction():
    w = small_workload(seed=1)
    backend, ev = _backend(w)
    (s,) = _strings(w, 1)
    expected = backend.objective.reduce(ev.samples_string(s))
    assert backend.string_makespan(s) == expected
    assert backend.makespan(list(s.order), list(s.machines)) == expected
    batch = backend.batch_string_makespans(_strings(w, 4))
    matrix = ev.string_matrix(_strings(w, 4))
    np.testing.assert_allclose(
        batch, backend.objective.reduce_matrix(matrix)
    )


def test_backend_schedules_stay_nominal():
    """Decoded schedules report real (nominal) makespans, not statistics."""
    w = small_workload(seed=1)
    backend, _ = _backend(w)
    (s,) = _strings(w, 1)
    nominal = make_simulator(w, "contention-free")
    sched = backend.evaluate(s)
    assert sched.makespan == nominal.string_makespan(s)
    assert backend.finish_times(s) == nominal.finish_times(s)


def test_backend_delta_tier_rescores_exactly():
    """prepare/evaluate_delta agree with full scoring (no pruning)."""
    w = small_workload(seed=1)
    backend, _ = _backend(w)
    a, b = _strings(w, 2, seed=7)
    state = backend.prepare(list(a.order), list(a.machines))
    assert state.makespan == backend.string_makespan(a)
    # a cutoff below the true scalar must NOT truncate the result
    moved = backend.evaluate_delta(
        list(b.order), list(b.machines), 0, state, cutoff=0.0
    )
    assert moved == backend.string_makespan(b)
