"""EvaluationService routing, validation and engine integration of the
scenario objectives."""

import numpy as np
import pytest

from repro.baselines import GAConfig, GeneticAlgorithm, random_search
from repro.core import SEConfig, SimulatedEvolution
from repro.optim import (
    EvaluationService,
    ParetoTracker,
    SAConfig,
    TabuConfig,
    run_sa,
    run_tabu,
)
from repro.schedule.operations import random_valid_string
from repro.stochastic import validate_scenario_settings
from repro.workloads import small_workload

RISK = dict(objective="quantile:0.9", scenarios=8, distribution="uniform:0.3")


def _string(w, seed=0):
    return random_valid_string(w.graph, w.num_machines, seed)


# ----------------------------------------------------------------------
# service routing
# ----------------------------------------------------------------------


def test_service_reduces_every_scored_scalar():
    w = small_workload(seed=1)
    svc = EvaluationService(w, **RISK)
    assert svc.scenarios == 8
    s = _string(w)
    samples = svc.scenario_evaluator.samples_string(s)
    expected = svc.objective.reduce(samples)
    assert svc.string_makespan(s) == expected
    assert svc.evaluations == 1
    batch = svc.batch_string_makespans([s, _string(w, 1)])
    assert batch[0] == expected
    assert svc.evaluations == 3  # one per schedule, scenarios are free


def test_service_schedule_of_stays_nominal():
    w = small_workload(seed=1)
    svc = EvaluationService(w, **RISK)
    base = EvaluationService(w)
    s = _string(w)
    assert svc.schedule_of(s).makespan == base.string_makespan(s)


def test_deterministic_service_has_no_scenario_machinery():
    svc = EvaluationService(small_workload(seed=1))
    assert svc.scenarios == 0
    assert svc.scenario_evaluator is None


def test_scenario_seed_changes_the_sample():
    w = small_workload(seed=1)
    a = EvaluationService(w, scenario_seed=0, **RISK)
    b = EvaluationService(w, scenario_seed=1, **RISK)
    s = _string(w)
    xa = a.scenario_evaluator.samples_string(s)
    xb = b.scenario_evaluator.samples_string(s)
    assert not (xa == xb).all()


def test_platform_speed_scaling_composes_with_scenarios():
    """Scenarios perturb the platform's effective matrix, not the raw one."""
    w = small_workload(seed=1)
    svc = EvaluationService(w, platform="spot", **RISK)
    eff = svc.effective_workload
    assert svc.scenario_evaluator.workload is eff
    scen = svc.scenario_evaluator.scenario_set
    np.testing.assert_allclose(
        scen.exec_tensor[0],
        eff.exec_times.values * scen.exec_factors[0][None, :],
    )


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_scenario_objective_without_scenarios_is_rejected():
    with pytest.raises(ValueError, match="scenarios"):
        EvaluationService(small_workload(seed=1), objective="mean")
    with pytest.raises(ValueError, match="scenarios"):
        validate_scenario_settings("quantile:0.9", 0, "uniform:0.2")


def test_scenario_params_without_scenario_objective_are_rejected():
    w = small_workload(seed=1)
    with pytest.raises(ValueError, match="no effect"):
        EvaluationService(w, scenarios=8)
    with pytest.raises(ValueError, match="no effect"):
        EvaluationService(w, distribution="lognormal:0.3")
    with pytest.raises(ValueError, match="no effect"):
        validate_scenario_settings("weighted:1:1", 4, "deterministic")


def test_pareto_tracking_is_unsupported():
    w = small_workload(seed=1)
    with pytest.raises(ValueError, match="[Pp]areto"):
        EvaluationService(w, pareto=ParetoTracker(), **RISK)


def test_initial_state_is_unsupported():
    w = small_workload(seed=1)
    with pytest.raises(ValueError, match="initial"):
        EvaluationService(
            w, initial_avail=[1.0] * w.num_machines, **RISK
        )


def test_boot_delay_platform_is_unsupported():
    w = small_workload(seed=1)
    with pytest.raises(ValueError, match="boot"):
        EvaluationService(w, platform="cloud", **RISK)


@pytest.mark.parametrize(
    "config_cls",
    [SEConfig, SAConfig, TabuConfig, GAConfig],
)
def test_configs_validate_the_scenario_bundle(config_cls):
    config_cls(**RISK)  # valid bundle constructs
    with pytest.raises(ValueError):
        config_cls(objective="mean")  # scenario objective, no scenarios
    with pytest.raises(ValueError):
        config_cls(scenarios=8)  # scenarios, deterministic objective


# ----------------------------------------------------------------------
# engines optimise the statistic
# ----------------------------------------------------------------------


def _risk_of(svc, string):
    return svc.objective.reduce(
        svc.scenario_evaluator.samples_string(string)
    )


@pytest.mark.parametrize(
    "run",
    [
        lambda w: SimulatedEvolution(
            SEConfig(seed=3, max_iterations=10, **RISK)
        ).run(w),
        lambda w: SimulatedEvolution(
            SEConfig(
                seed=3, max_iterations=10, probe_evaluation="batch", **RISK
            )
        ).run(w),
        lambda w: run_sa(w, SAConfig(seed=3, max_iterations=150, **RISK)),
        lambda w: run_tabu(w, TabuConfig(seed=3, max_iterations=10, **RISK)),
        lambda w: GeneticAlgorithm(
            GAConfig(seed=3, max_generations=8, **RISK)
        ).run(w),
    ],
    ids=["se-delta", "se-batch", "sa", "tabu", "ga"],
)
def test_engine_winners_report_nominal_makespan(run):
    w = small_workload(seed=1)
    res = run(w)
    base = EvaluationService(w)
    assert res.best_makespan == pytest.approx(
        base.string_makespan(res.best_string)
    )


def test_random_search_minimises_the_statistic_not_the_nominal():
    w = small_workload(seed=1)
    res = random_search(w, samples=64, seed=5, **RISK)
    svc = EvaluationService(w, **RISK)
    # replay the draw: the winner has the smallest reduced statistic
    rng = np.random.default_rng(5)
    best = None
    for _ in range(64):
        s = random_valid_string(w.graph, w.num_machines, rng)
        v = _risk_of(svc, s)
        if best is None or v < best:
            best = v
    assert _risk_of(svc, res.string) == pytest.approx(best)
