"""Distribution grammar, sampling determinism and tensor shapes."""

import numpy as np
import pytest

from repro.stochastic.distributions import (
    DETERMINISTIC,
    DISTRIBUTION_FORMS,
    DistributionSpec,
    resolve_distribution,
    sample_scenarios,
)
from repro.workloads import small_workload


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec, name",
    [
        ("deterministic", "deterministic"),
        ("uniform:0.2", "uniform:0.2"),
        ("lognormal:0.25", "lognormal:0.25"),
        ("empirical:1,1,4", "empirical:1,1,4"),
        ("empirical:1.5,0.5", "empirical:1.5,0.5"),
    ],
)
def test_resolve_round_trips_through_name(spec, name):
    resolved = resolve_distribution(spec)
    assert resolved.name == name
    # the name is itself a valid spec resolving to the same object
    assert resolve_distribution(resolved.name) == resolved


def test_resolve_accepts_spec_instances():
    spec = DistributionSpec("uniform", width=0.3)
    assert resolve_distribution(spec) is spec


@pytest.mark.parametrize(
    "bad",
    [
        "nope",
        "uniform:1.0",  # width 1 could draw factor 0
        "uniform:-0.1",
        "uniform:abc",
        "lognormal:-1",
        "lognormal:nan",
        "empirical:",
        "empirical:0",  # factor must be > 0
        "empirical:1,-2",
        "empirical:inf",
        42,
    ],
)
def test_resolve_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        resolve_distribution(bad)


def test_every_advertised_form_has_a_working_example():
    examples = {
        "deterministic": "deterministic",
        "uniform:<width>": "uniform:0.2",
        "lognormal:<sigma>": "lognormal:0.25",
        "empirical:<f1,f2,...>": "empirical:1,1,1,1,4",
    }
    advertised = {form for form, _ in DISTRIBUTION_FORMS}
    assert advertised == set(examples)
    for example in examples.values():
        resolve_distribution(example)


@pytest.mark.parametrize(
    "spec, deterministic",
    [
        ("deterministic", True),
        ("uniform:0", True),
        ("lognormal:0", True),
        ("empirical:1,1,1", True),
        ("uniform:0.1", False),
        ("lognormal:0.1", False),
        ("empirical:1,2", False),
    ],
)
def test_is_deterministic_detects_identity_noise(spec, deterministic):
    assert resolve_distribution(spec).is_deterministic is deterministic


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------

DISTS = ("uniform:0.3", "lognormal:0.4", "empirical:1,1,1,1,4")


@pytest.mark.parametrize("dist", DISTS)
def test_sampling_is_a_pure_function_of_seed(dist):
    w = small_workload(seed=1)
    a = sample_scenarios(w, dist, scenarios=6, seed=3)
    b = sample_scenarios(w, dist, scenarios=6, seed=3)
    assert (a.exec_factors == b.exec_factors).all()
    assert (a.transfer_factors == b.transfer_factors).all()
    c = sample_scenarios(w, dist, scenarios=6, seed=4)
    assert not (a.exec_factors == c.exec_factors).all()


@pytest.mark.parametrize("dist", DISTS)
def test_sampling_ignores_worker_count_env(dist, monkeypatch):
    """The runner's process fan-out must never change a scenario."""
    w = small_workload(seed=1)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    base = sample_scenarios(w, dist, scenarios=5, seed=9)
    for workers in ("1", "8", "garbage"):
        monkeypatch.setenv("REPRO_WORKERS", workers)
        again = sample_scenarios(w, dist, scenarios=5, seed=9)
        assert (again.exec_factors == base.exec_factors).all()
        assert (again.transfer_factors == base.transfer_factors).all()


@pytest.mark.parametrize("dist", DISTS)
def test_tensor_shapes_and_positivity(dist):
    w = small_workload(seed=1)
    scen = sample_scenarios(w, dist, scenarios=7, seed=0)
    S, l, k = 7, w.num_machines, w.num_tasks
    assert scen.scenarios == S
    assert scen.exec_tensor.shape == (S, l, k)
    assert (scen.exec_tensor > 0).all()
    tr = scen.transfer_tensor
    assert tr is not None
    assert tr.shape == (S,) + w.transfer_times.values.shape
    assert (tr >= 0).all()


def test_sampling_means_match_the_model():
    w = small_workload(seed=1)
    # uniform and lognormal are mean-one; empirical's mean is the
    # table's mean (1+1+1+1+4)/5
    for dist, mean in [
        ("uniform:0.3", 1.0),
        ("lognormal:0.4", 1.0),
        ("empirical:1,1,1,1,4", 1.6),
    ]:
        scen = sample_scenarios(w, dist, scenarios=4000, seed=0)
        assert scen.exec_factors.mean() == pytest.approx(mean, abs=0.05)


def test_deterministic_sampling_returns_nominal_objects():
    w = small_workload(seed=1)
    scen = sample_scenarios(w, DETERMINISTIC, scenarios=3, seed=5)
    assert (scen.exec_factors == 1.0).all()
    for s in range(3):
        assert scen.workload_for(s) is w
    assert (scen.exec_tensor[1] == w.exec_times.values).all()


def test_workload_views_share_structure_and_scale_values():
    w = small_workload(seed=1)
    scen = sample_scenarios(w, "lognormal:0.3", scenarios=3, seed=2)
    view = scen.workload_for(1)
    assert view.graph is w.graph
    assert view.system is w.system
    assert view.classification is w.classification
    expected = w.exec_times.values * scen.exec_factors[1][None, :]
    np.testing.assert_allclose(view.exec_times.values, expected)
    assert scen.workload_for(1) is view  # cached
    with pytest.raises(IndexError):
        scen.workload_for(3)


def test_exec_factors_scale_columns_not_machines():
    """Noise is per-task: machine speed ratios survive every scenario."""
    w = small_workload(seed=1)
    scen = sample_scenarios(w, "uniform:0.4", scenarios=2, seed=0)
    E = w.exec_times.values
    Es = scen.exec_tensor[0]
    ratios = Es / E  # (l, k): must be constant down each column
    assert np.allclose(ratios, ratios[0][None, :])


def test_sample_scenarios_rejects_zero_scenarios():
    with pytest.raises(ValueError, match="scenarios"):
        sample_scenarios(small_workload(seed=1), "uniform:0.2", scenarios=0)
