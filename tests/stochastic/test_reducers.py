"""ScenarioObjective reducers: grammar, edge cases, percentile parity."""

import math

import numpy as np
import pytest

from repro.online.metrics import percentile
from repro.optim.objective import (
    OBJECTIVE_FORMS,
    ScenarioObjective,
    resolve_objective,
)

SAMPLES = [14.0, 3.0, 9.0, 9.0, 27.0, 1.0, 5.0]


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec, name",
    [
        ("mean", "mean"),
        ("quantile:0.95", "quantile:0.95"),
        ("quantile:0.5", "quantile:0.5"),
        ("cvar:0.9", "cvar:0.9"),
        ("cvar:0", "cvar:0"),
        ("saa:120:0.05", "saa:120:0.05"),
    ],
)
def test_resolve_round_trips_through_name(spec, name):
    obj = resolve_objective(spec)
    assert obj.is_scenario and not obj.is_makespan
    assert obj.name == name
    assert resolve_objective(obj.name) == obj


@pytest.mark.parametrize(
    "bad",
    [
        "quantile:0",  # q in (0, 1]
        "quantile:1.2",
        "quantile:abc",
        "cvar:1",  # q in [0, 1)
        "cvar:-0.1",
        "saa:0:0.1",  # target must be > 0
        "saa:inf:0.1",
        "saa:100:0",  # eps in (0, 1)
        "saa:100:1",
        "saa:100",  # missing eps
        "percentile:0.9",  # unknown form
    ],
)
def test_resolve_rejects_bad_scenario_specs(bad):
    with pytest.raises(ValueError):
        resolve_objective(bad)


def test_every_advertised_scenario_form_works():
    examples = {
        "mean": "mean",
        "quantile:<q>": "quantile:0.9",
        "cvar:<q>": "cvar:0.9",
        "saa:<T>:<eps>": "saa:100:0.1",
    }
    advertised = {
        form for form, needs_scenarios, _ in OBJECTIVE_FORMS if needs_scenarios
    }
    assert advertised == set(examples)
    for example in examples.values():
        assert resolve_objective(example).is_scenario


def test_deterministic_objectives_are_not_scenario():
    assert not resolve_objective("makespan").is_scenario
    assert not resolve_objective("weighted:1:2").is_scenario


# ----------------------------------------------------------------------
# reducers
# ----------------------------------------------------------------------


def test_quantile_uses_the_nearest_rank_rule_of_online_metrics():
    """quantile:q must agree exactly with repro.online.metrics.percentile."""
    rng = np.random.default_rng(0)
    for n in (1, 2, 3, 7, 100):
        xs = list(rng.uniform(1.0, 500.0, n))
        for q in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            got = ScenarioObjective("quantile", q=q).reduce(xs)
            assert got == percentile(xs, q)


def test_mean_reduce():
    obj = resolve_objective("mean")
    assert obj.reduce(SAMPLES) == pytest.approx(sum(SAMPLES) / len(SAMPLES))


def test_single_sample_reduces_to_the_value_for_every_kind():
    for spec in ("mean", "quantile:0.95", "cvar:0.5", "saa:100:0.1"):
        assert resolve_objective(spec).reduce([42.0]) == 42.0


def test_all_equal_samples_reduce_to_that_value():
    xs = [7.0] * 9
    for spec in ("mean", "quantile:0.95", "cvar:0.5", "saa:100:0.1"):
        assert resolve_objective(spec).reduce(xs) == 7.0


def test_cvar_zero_is_the_mean_and_cvar_dominates_var():
    xs = SAMPLES
    assert resolve_objective("cvar:0").reduce(xs) == pytest.approx(
        resolve_objective("mean").reduce(xs)
    )
    for q in (0.1, 0.5, 0.9):
        var = resolve_objective(f"quantile:{q}").reduce(xs)
        cvar = resolve_objective(f"cvar:{q}").reduce(xs)
        assert cvar >= var
    # the extreme tail is the max
    assert resolve_objective("quantile:1").reduce(xs) == max(xs)


def test_cvar_tail_arithmetic():
    xs = [1.0, 2.0, 3.0, 4.0]
    # rank of q=0.5 over 4 samples is 2 -> tail = {2, 3, 4}
    assert resolve_objective("cvar:0.5").reduce(xs) == pytest.approx(3.0)


def test_saa_scores_by_the_survival_quantile_and_reports_feasibility():
    obj = resolve_objective("saa:10:0.25")
    assert obj.level == pytest.approx(0.75)
    xs = [1.0, 2.0, 3.0, 20.0]
    # (1-eps)-quantile: rank ceil(0.75*4)=3 -> 3.0 <= 10 -> feasible
    assert obj.reduce(xs) == 3.0
    assert obj.feasible(xs)
    assert not obj.feasible([11.0, 12.0, 13.0, 14.0])


def test_reduce_matrix_matches_columnwise_reduce():
    rng = np.random.default_rng(1)
    matrix = rng.uniform(1.0, 100.0, size=(13, 5))
    for spec in ("mean", "quantile:0.9", "cvar:0.8", "saa:50:0.2"):
        obj = resolve_objective(spec)
        out = obj.reduce_matrix(matrix)
        assert out.shape == (5,)
        for b in range(5):
            assert out[b] == pytest.approx(obj.reduce(matrix[:, b]))


def test_reduce_is_bounded_by_the_sample_range():
    rng = np.random.default_rng(2)
    xs = rng.uniform(1.0, 1000.0, 17)
    for spec in ("mean", "quantile:0.25", "quantile:0.95", "cvar:0.6"):
        v = resolve_objective(spec).reduce(xs)
        assert xs.min() <= v <= xs.max()


def test_scalarize_ignores_cost():
    """Scenario objectives rank by the reduced makespan statistic only."""
    obj = resolve_objective("quantile:0.9")
    assert obj.scalarize(12.0, 99.0) == 12.0
    spans = np.array([1.0, 2.0])
    assert (obj.scalarize_arrays(spans, np.array([5.0, 5.0])) == spans).all()


def test_is_deterministic_flag_consistency():
    assert math.isfinite(resolve_objective("saa:10:0.5").target)
    for spec in ("mean", "quantile:0.9", "cvar:0.9", "saa:10:0.5"):
        obj = resolve_objective(spec)
        assert obj.is_scenario
        assert not obj.is_makespan
