"""Unit tests for timelines, schedule verification, and metrics."""

import pytest

from repro.model import FIGURE2_PAIRS
from repro.schedule.encoding import ScheduleString
from repro.schedule.metrics import (
    communication_volume,
    compute_metrics,
    critical_path_lower_bound,
    machine_load_lower_bound,
    makespan_lower_bound,
    normalized_makespan,
    serial_speedup,
)
from repro.schedule.simulator import Schedule, Simulator
from repro.schedule.timeline import Timeline, verify_schedule


@pytest.fixture
def fig2_schedule(sample_workload):
    s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
    return Simulator(sample_workload).evaluate(s)


class TestTimeline:
    def test_spans_partition_tasks(self, sample_workload, fig2_schedule):
        tl = Timeline(fig2_schedule, sample_workload.num_machines)
        tasks = [s.task for m in range(2) for s in tl.spans(m)]
        assert sorted(tasks) == list(range(7))

    def test_spans_in_execution_order(self, sample_workload, fig2_schedule):
        tl = Timeline(fig2_schedule, 2)
        for m in range(2):
            starts = [s.start for s in tl.spans(m)]
            assert starts == sorted(starts)

    def test_busy_plus_idle_equals_makespan(self, fig2_schedule):
        tl = Timeline(fig2_schedule, 2)
        for m in range(2):
            assert tl.busy_time(m) + tl.idle_time(m) == pytest.approx(
                fig2_schedule.makespan
            )

    def test_utilization_in_unit_interval(self, fig2_schedule):
        tl = Timeline(fig2_schedule, 2)
        for m in range(2):
            assert 0.0 <= tl.utilization(m) <= 1.0

    def test_mean_utilization(self, fig2_schedule):
        tl = Timeline(fig2_schedule, 2)
        assert tl.mean_utilization() == pytest.approx(
            (tl.utilization(0) + tl.utilization(1)) / 2
        )

    def test_span_duration(self, sample_workload, fig2_schedule):
        tl = Timeline(fig2_schedule, 2)
        for m in range(2):
            for span in tl.spans(m):
                assert span.duration == pytest.approx(
                    sample_workload.exec_time(m, span.task)
                )

    def test_render_ascii_has_machine_rows(self, fig2_schedule):
        art = Timeline(fig2_schedule, 2).render_ascii(width=40)
        lines = art.splitlines()
        assert lines[0].startswith("m0")
        assert lines[1].startswith("m1")

    def test_render_ascii_zero_makespan(self):
        empty = Schedule(order=(), machine_of=(), start=(), finish=(), makespan=0.0)
        art = Timeline(empty, 2).render_ascii()
        assert "m0" in art


class TestVerifySchedule:
    def test_accepts_simulator_output(self, sample_workload, fig2_schedule):
        verify_schedule(sample_workload, fig2_schedule)

    def test_rejects_wrong_duration(self, sample_workload, fig2_schedule):
        broken = Schedule(
            order=fig2_schedule.order,
            machine_of=fig2_schedule.machine_of,
            start=fig2_schedule.start,
            finish=tuple(f + 1 for f in fig2_schedule.finish),
            makespan=fig2_schedule.makespan,
        )
        with pytest.raises(AssertionError, match="runs for"):
            verify_schedule(sample_workload, broken)

    def test_rejects_overlap(self, diamond_workload):
        # two tasks on one machine forced to overlap
        sim = Simulator(diamond_workload)
        good = sim.evaluate(ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 2))
        overlapped = Schedule(
            order=good.order,
            machine_of=good.machine_of,
            start=(0.0, 5.0, 35.0, 60.0),  # s1 starts while s0 runs
            finish=(10.0, 25.0, 65.0, 70.0),
            makespan=70.0,
        )
        with pytest.raises(AssertionError):
            verify_schedule(diamond_workload, overlapped)

    def test_rejects_start_before_data_arrival(self, diamond_workload):
        sim = Simulator(diamond_workload)
        good = sim.evaluate(ScheduleString([0, 1, 2, 3], [0, 1, 0, 0], 2))
        # shift s1 earlier than its input allows
        cheat = Schedule(
            order=good.order,
            machine_of=good.machine_of,
            start=(0.0, 0.0) + good.start[2:],
            finish=(10.0, 10.0) + good.finish[2:],
            makespan=good.makespan,
        )
        with pytest.raises(AssertionError):
            verify_schedule(diamond_workload, cheat)

    def test_rejects_wrong_makespan(self, sample_workload, fig2_schedule):
        broken = Schedule(
            order=fig2_schedule.order,
            machine_of=fig2_schedule.machine_of,
            start=fig2_schedule.start,
            finish=fig2_schedule.finish,
            makespan=fig2_schedule.makespan * 2,
        )
        with pytest.raises(AssertionError, match="makespan"):
            verify_schedule(sample_workload, broken)


class TestLowerBounds:
    def test_critical_path_on_chain(self, single_machine_workload):
        # chain graph 0->2->3 and 0->2->4, 1->2; longest best-time path
        lb = critical_path_lower_bound(single_machine_workload)
        # path 1(4) -> 2(5) -> 4(7) = 16 is the longest
        assert lb == pytest.approx(16.0)

    def test_machine_load_bound(self, single_machine_workload):
        assert machine_load_lower_bound(single_machine_workload) == pytest.approx(
            25.0
        )

    def test_makespan_lower_bound_is_max(self, single_machine_workload):
        assert makespan_lower_bound(single_machine_workload) == pytest.approx(25.0)

    def test_no_schedule_beats_the_bound(self, tiny_workload):
        from repro.schedule.operations import random_valid_string

        lb = makespan_lower_bound(tiny_workload)
        sim = Simulator(tiny_workload)
        for seed in range(10):
            s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, seed)
            assert sim.string_makespan(s) >= lb - 1e-9


class TestMetrics:
    def test_communication_volume_all_local_is_zero(self, diamond_workload):
        s = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 2)
        sched = Simulator(diamond_workload).evaluate(s)
        assert communication_volume(diamond_workload, sched) == 0.0

    def test_communication_volume_counts_cross_items(self, diamond_workload):
        s = ScheduleString([0, 1, 2, 3], [0, 1, 0, 0], 2)
        sched = Simulator(diamond_workload).evaluate(s)
        # items crossing: d0 (s0->s1) and d2 (s1->s3), each 5.0
        assert communication_volume(diamond_workload, sched) == pytest.approx(10.0)

    def test_normalized_makespan_at_least_one(self, sample_workload, fig2_schedule):
        assert normalized_makespan(sample_workload, fig2_schedule.makespan) >= 1.0

    def test_serial_speedup_positive(self, sample_workload, fig2_schedule):
        assert serial_speedup(sample_workload, fig2_schedule.makespan) > 0

    def test_serial_speedup_rejects_zero(self, sample_workload):
        with pytest.raises(ValueError, match="> 0"):
            serial_speedup(sample_workload, 0.0)

    def test_compute_metrics_bundle(self, sample_workload, fig2_schedule):
        m = compute_metrics(sample_workload, fig2_schedule)
        assert m.makespan == fig2_schedule.makespan
        assert m.normalized_makespan >= 1.0
        assert 0.0 <= m.mean_utilization <= 1.0
        assert "makespan" in m.describe()
