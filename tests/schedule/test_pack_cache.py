"""Unit tests for the per-process ``WorkloadPack`` cache.

The cache (``repro.schedule.vectorized``) memoises packed tensors per
process keyed by a content fingerprint, so independently-rebuilt equal
workloads (the runner's worker processes rebuild from declarative
specs) share one pack.  These tests pin the fingerprint semantics, the
LRU bound, the kill-switch, and the ``_bind_pack`` hook that routes
every kernel construction through the cache.
"""

import numpy as np
import pytest

from repro.model import TransferTimeMatrix, Workload, num_pairs
from repro.schedule.vectorized import (
    BatchSimulator,
    WorkloadPack,
    clear_pack_cache,
    get_workload_pack,
    pack_cache_enabled,
    pack_cache_stats,
    workload_fingerprint,
)
from repro.schedule.vectorized_contention import ContentionBatchSimulator
from repro.workloads import WorkloadSpec, small_workload
from repro.workloads.presets import build_workload


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_pack_cache()
    yield
    clear_pack_cache()


class TestFingerprint:
    def test_stable_across_independent_rebuilds(self):
        spec = WorkloadSpec(num_tasks=10, num_machines=3, seed=5, name="w")
        a, b = build_workload(spec), build_workload(spec)
        assert a is not b
        assert workload_fingerprint(a) == workload_fingerprint(b)

    def test_execution_times_are_fingerprinted(self):
        from repro.model import ExecutionTimeMatrix

        w = small_workload(seed=1)
        scaled = Workload(
            w.graph,
            w.system,
            ExecutionTimeMatrix(w.exec_times.values * 2.0),
            w.transfer_times,
        )
        assert workload_fingerprint(w) != workload_fingerprint(scaled)

    def test_transfer_times_are_fingerprinted(self):
        w = small_workload(seed=1)
        tr = TransferTimeMatrix(
            np.zeros((num_pairs(w.num_machines), w.num_data_items)),
            num_machines=w.num_machines,
        )
        wz = Workload(w.graph, w.system, w.exec_times, tr)
        assert workload_fingerprint(w) != workload_fingerprint(wz)


class TestCacheBehaviour:
    def test_hit_returns_the_same_object(self):
        spec = WorkloadSpec(num_tasks=10, num_machines=3, seed=5, name="w")
        a, b = build_workload(spec), build_workload(spec)
        pa = get_workload_pack(a)
        pb = get_workload_pack(b)
        assert pa is pb
        stats = pack_cache_stats()
        assert stats == {"hits": 1, "misses": 1, "size": 1}

    def test_distinct_workloads_get_distinct_packs(self):
        pa = get_workload_pack(small_workload(seed=1))
        pb = get_workload_pack(small_workload(seed=2))
        assert pa is not pb
        assert pack_cache_stats()["size"] == 2

    def test_lru_eviction_beyond_capacity(self, monkeypatch):
        from repro.schedule import vectorized as vec

        monkeypatch.setattr(vec, "PACK_CACHE_CAPACITY", 2)
        w1, w2, w3 = (small_workload(seed=s) for s in (1, 2, 3))
        p1 = get_workload_pack(w1)
        get_workload_pack(w2)
        get_workload_pack(w3)  # evicts w1 (least recently used)
        assert pack_cache_stats()["size"] == 2
        assert get_workload_pack(w1) is not p1  # re-packed after eviction

    def test_kill_switch_disables_reuse(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACK_CACHE", "0")
        assert not pack_cache_enabled()
        w = small_workload(seed=1)
        assert get_workload_pack(w) is not get_workload_pack(w)
        assert pack_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACK_CACHE", raising=False)
        assert pack_cache_enabled()


class TestKernelIntegration:
    def test_kernels_share_the_cached_pack(self):
        """Both networks' kernels bind one pack per workload."""
        w = small_workload(seed=4)
        BatchSimulator(w)
        ContentionBatchSimulator(w)
        stats = pack_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_explicit_pack_bypasses_the_cache(self):
        w = small_workload(seed=4)
        BatchSimulator(w, pack=WorkloadPack(w))
        assert pack_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_cached_and_fresh_packs_score_identically(self, monkeypatch):
        from repro.schedule import random_valid_string

        w = small_workload(seed=4)
        strings = [
            random_valid_string(w.graph, w.num_machines, s) for s in range(5)
        ]
        cached = BatchSimulator(w).string_makespans(strings)
        monkeypatch.setenv("REPRO_PACK_CACHE", "0")
        fresh = BatchSimulator(w).string_makespans(strings)
        assert cached.tolist() == fresh.tolist()
