"""Unit tests for the combined matching+scheduling string."""

import pytest

from repro.model.graph import TaskGraph
from repro.schedule.encoding import (
    ScheduleString,
    is_valid_for,
    topological_string,
)


@pytest.fixture
def string() -> ScheduleString:
    # order s2, s0, s1 on machines 1, 0, 1
    return ScheduleString([2, 0, 1], [0, 1, 1], num_machines=2)


class TestConstruction:
    def test_basic(self, string):
        assert string.num_tasks == 3
        assert string.num_machines == 2

    def test_pairs_reflect_order(self, string):
        assert string.pairs() == ((2, 1), (0, 0), (1, 1))

    def test_from_pairs_roundtrip(self, string):
        rebuilt = ScheduleString.from_pairs(string.pairs(), 2)
        assert rebuilt == string

    def test_from_pairs_bad_task_id(self):
        with pytest.raises(ValueError, match="out of range"):
            ScheduleString.from_pairs([(0, 0), (5, 1)], 2)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            ScheduleString([0, 0, 1], [0, 0, 0], 1)

    def test_machine_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ScheduleString([0, 1], [0, 5], 2)

    def test_machine_len_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ScheduleString([0, 1], [0], 2)

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            ScheduleString([0], [0], 0)


class TestAccessors:
    def test_position_of(self, string):
        assert string.position_of(2) == 0
        assert string.position_of(0) == 1
        assert string.position_of(1) == 2

    def test_task_at(self, string):
        assert [string.task_at(i) for i in range(3)] == [2, 0, 1]

    def test_machine_of(self, string):
        assert string.machine_of(0) == 0
        assert string.machine_of(1) == 1
        assert string.machine_of(2) == 1

    def test_machine_sequence(self, string):
        assert string.machine_sequence(1) == [2, 1]
        assert string.machine_sequence(0) == [0]

    def test_len_and_iter(self, string):
        assert len(string) == 3
        assert list(string) == list(string.pairs())


class TestCopy:
    def test_copy_is_independent(self, string):
        c = string.copy()
        c.move(2, 2)
        c.assign(0, 1)
        assert string.position_of(2) == 0
        assert string.machine_of(0) == 0

    def test_copy_equal(self, string):
        assert string.copy() == string


class TestMutation:
    def test_assign(self, string):
        string.assign(2, 1)
        assert string.machine_of(2) == 1

    def test_assign_out_of_range(self, string):
        with pytest.raises(ValueError, match="out of range"):
            string.assign(0, 9)

    def test_move_forward(self, string):
        string.move(2, 2)  # move s2 from front to end
        assert string.order == [0, 1, 2]
        assert string.position_of(2) == 2

    def test_move_backward(self, string):
        string.move(1, 0)
        assert string.order == [1, 2, 0]

    def test_move_noop(self, string):
        string.move(0, 1)
        assert string.order == [2, 0, 1]

    def test_move_updates_positions(self, string):
        string.move(2, 1)
        for pos, t in enumerate(string.order):
            assert string.position_of(t) == pos

    def test_move_out_of_range(self, string):
        with pytest.raises(IndexError):
            string.move(0, 3)

    def test_relocate_combined(self, string):
        string.relocate(2, 2, 1)
        assert string.order == [0, 1, 2]
        assert string.machine_of(2) == 1

    def test_move_then_back_restores(self, string):
        before = string.pairs()
        string.move(2, 2)
        string.move(2, 0)
        assert string.pairs() == before


class TestValidity:
    def test_is_valid_for(self):
        graph = TaskGraph.from_edges(3, [(0, 1), (1, 2)])
        good = ScheduleString([0, 1, 2], [0, 0, 0], 1)
        bad = ScheduleString([1, 0, 2], [0, 0, 0], 1)
        assert is_valid_for(good, graph)
        assert not is_valid_for(bad, graph)

    def test_is_valid_for_size_mismatch(self):
        graph = TaskGraph.from_edges(3, [])
        s = ScheduleString([0, 1], [0, 0], 1)
        assert not is_valid_for(s, graph)

    def test_topological_string(self):
        graph = TaskGraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        s = topological_string(graph, [0, 1, 0, 1], 2)
        assert is_valid_for(s, graph)
        assert s.machine_of(1) == 1
