"""The platform axis: specs, registry, boot/speed semantics, bit-identity.

The contract that matters most here is the last test class: the default
``"uniform"`` platform must leave the whole evaluation path **bit
identical** to the historical no-platform code — both networks, scalar
and batch tier — because every golden result in this repo is pinned
against that path.
"""

import numpy as np
import pytest

from repro.model.platform import (
    CLOUD_PLATFORM,
    SPOT_PLATFORM,
    UNIFORM_PLATFORM,
    InstanceType,
    PlatformSpec,
)
from repro.schedule import make_simulator
from repro.schedule.backend import (
    available_platforms,
    platform_cost_vectorized,
    platform_state,
    register_platform,
    resolve_platform,
)
from repro.schedule.operations import random_valid_string
from repro.workloads import WorkloadSpec, build_workload


@pytest.fixture
def workload():
    return build_workload(WorkloadSpec(num_tasks=12, num_machines=3, seed=7))


class TestInstanceType:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            InstanceType("")
        with pytest.raises(ValueError, match="speed"):
            InstanceType("x", speed=0.0)
        with pytest.raises(ValueError, match="speed"):
            InstanceType("x", speed=float("inf"))
        with pytest.raises(ValueError, match="price"):
            InstanceType("x", price=-0.1)
        with pytest.raises(ValueError, match="boot"):
            InstanceType("x", boot=-1.0)

    def test_identity_flag(self):
        assert InstanceType("x").is_identity
        assert not InstanceType("x", speed=2.0).is_identity
        assert not InstanceType("x", price=0.1).is_identity
        assert not InstanceType("x", boot=0.5).is_identity


class TestPlatformSpec:
    def test_round_robin_assignment(self):
        spec = PlatformSpec(
            "p",
            instances=(
                InstanceType("a", speed=1.0),
                InstanceType("b", speed=2.0),
            ),
        )
        bound = spec.bind(5)
        assert bound.speeds == (1.0, 2.0, 1.0, 2.0, 1.0)
        assert [i.name for i in bound.instance_of] == ["a", "b", "a", "b", "a"]

    def test_uniform_and_boot_flags(self):
        assert UNIFORM_PLATFORM.is_uniform and not UNIFORM_PLATFORM.has_boot
        assert not SPOT_PLATFORM.is_uniform and not SPOT_PLATFORM.has_boot
        assert CLOUD_PLATFORM.has_boot

    def test_bind_validates_machine_count(self):
        with pytest.raises(ValueError, match="num_machines"):
            SPOT_PLATFORM.bind(0)

    def test_apply_scales_exec_rows_by_speed(self, workload):
        bound = SPOT_PLATFORM.bind(workload.num_machines)
        scaled = bound.apply(workload)
        assert scaled is not workload
        np.testing.assert_array_equal(
            scaled.exec_times.values,
            workload.exec_times.values
            / np.array(bound.speeds).reshape(-1, 1),
        )
        # communication is the network model's business, not the platform's
        assert scaled.transfer_times is workload.transfer_times

    def test_apply_uniform_is_the_same_object(self, workload):
        bound = UNIFORM_PLATFORM.bind(workload.num_machines)
        assert bound.apply(workload) is workload

    def test_apply_rejects_machine_count_mismatch(self, workload):
        with pytest.raises(ValueError, match="machine"):
            SPOT_PLATFORM.bind(workload.num_machines + 1).apply(workload)

    def test_combine_avail_is_elementwise_max(self):
        spec = PlatformSpec(
            "b",
            instances=(
                InstanceType("x", boot=2.0),
                InstanceType("y", boot=0.5),
            ),
        )
        bound = spec.bind(2)
        assert bound.combine_avail() == [2.0, 0.5]
        assert bound.combine_avail([1.0, 1.0]) == [2.0, 1.0]
        with pytest.raises(ValueError, match="entries"):
            bound.combine_avail([1.0])


class TestRegistry:
    def test_builtins_registered(self):
        assert {"cloud", "spot", "uniform"} <= set(available_platforms())

    def test_resolve_is_case_insensitive(self):
        assert resolve_platform("SPOT") is SPOT_PLATFORM
        assert resolve_platform("uniform") is UNIFORM_PLATFORM

    def test_unknown_platform_lists_choices(self):
        with pytest.raises(ValueError, match="uniform"):
            resolve_platform("nope")

    def test_spec_objects_pass_through(self):
        ad_hoc = PlatformSpec("ad-hoc", instances=(InstanceType("z"),))
        assert resolve_platform(ad_hoc) is ad_hoc

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform(PlatformSpec("uniform"))

    def test_cost_vectorized_iff_zero_boot(self):
        assert platform_cost_vectorized("uniform")
        assert platform_cost_vectorized("spot")
        assert not platform_cost_vectorized("cloud")  # 0.3 boot everywhere


class TestBootSemantics:
    def test_platform_state_folds_boot_into_avail(self, workload):
        _, avail, nic_free = platform_state(workload, "cloud")
        bound = CLOUD_PLATFORM.bind(workload.num_machines)
        assert avail == list(bound.boots)
        assert nic_free is None  # contention-free: no NIC state
        _, _, nic = platform_state(workload, "cloud", network="nic")
        assert nic == list(bound.boots)  # an unbooted machine's NIC is down

    def test_platform_state_uniform_is_identity(self, workload):
        assert platform_state(workload, "uniform") == (workload, None, None)

    def test_boot_delays_the_first_task(self, workload):
        boot = 50.0
        spec = PlatformSpec(
            "all-boot", instances=(InstanceType("b", boot=boot),)
        )
        plain = make_simulator(workload)
        booted = make_simulator(workload, platform=spec)
        rng = np.random.default_rng(2)
        s = random_valid_string(workload.graph, workload.num_machines, rng)
        sched = booted.evaluate(s)
        assert min(sched.start) >= boot
        assert booted.string_makespan(s) >= plain.string_makespan(s)

    def test_boot_routes_batch_to_sequential_fallback(self, workload):
        assert make_simulator(workload, batch=True).is_vectorized
        assert make_simulator(
            workload, batch=True, platform="spot"
        ).is_vectorized
        assert not make_simulator(
            workload, batch=True, platform="cloud"
        ).is_vectorized


class TestUniformBitIdentity:
    """platform="uniform" is the historical path, bit for bit."""

    # pinned against the pre-platform evaluation path (seed 7 workload,
    # seed 11 string): both networks happen to agree on this string
    GOLDEN = {"contention-free": 538.8551161139121, "nic": 538.8551161139121}

    def _string(self, workload, seed=11):
        rng = np.random.default_rng(seed)
        return random_valid_string(
            workload.graph, workload.num_machines, rng
        )

    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_scalar_tier_bit_identical(self, workload, network):
        s = self._string(workload)
        plain = make_simulator(workload, network)
        uniform = make_simulator(workload, network, platform="uniform")
        assert uniform.workload is workload  # not even a copy
        assert uniform.string_makespan(s) == plain.string_makespan(s)
        assert uniform.string_makespan(s) == self.GOLDEN[network]
        assert uniform.cost_model is None

    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_batch_kernels_bit_identical(self, workload, network):
        strings = [self._string(workload, seed) for seed in range(20)]
        plain = make_simulator(workload, network, batch=True)
        uniform = make_simulator(
            workload, network, batch=True, platform="uniform"
        )
        assert uniform.is_vectorized  # uniform never forces the fallback
        assert (
            uniform.batch_string_makespans(strings).tolist()
            == plain.batch_string_makespans(strings).tolist()
        )

    def test_uniform_score_is_free(self, workload):
        s = self._string(workload)
        sim = make_simulator(workload, platform="uniform")
        score = sim.string_score(s)
        assert score.cost == 0.0
        assert score.makespan == sim.string_makespan(s)


class TestPricedBackend:
    GOLDEN_HEFT_SPOT = (226.87958221066023, 105.39607112443565)

    def test_spot_score_matches_hand_billing(self, workload):
        rng = np.random.default_rng(5)
        s = random_valid_string(workload.graph, workload.num_machines, rng)
        sim = make_simulator(workload, platform="spot")
        bound = SPOT_PLATFORM.bind(workload.num_machines)
        E = sim.workload.exec_times.values
        expected = sum(
            bound.prices[m] * E[m, t] for t, m in enumerate(s.machines)
        )
        score = sim.string_score(s)
        assert score.cost == pytest.approx(expected, rel=1e-12)
        assert score.point == (score.makespan, score.cost)
        assert sum(score.busy) == pytest.approx(
            E[s.machines, np.arange(workload.num_tasks)].sum()
        )

    def test_heft_on_spot_golden(self, workload):
        from repro.baselines import heft

        res = heft(workload, platform="spot")
        span, cost = self.GOLDEN_HEFT_SPOT
        assert res.makespan == span
        assert res.cost == cost
        # faster machines exist, so the platform run beats uniform HEFT
        assert res.makespan < heft(workload).makespan
