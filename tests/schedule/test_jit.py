"""Unit tests for the compiled kernel tier: selection, override
validation, registration, warmup, and tier reporting end to end.

Everything here runs on numba-free installations: the selection logic
reads ``repro.schedule.jit._NUMBA_OK`` at decision time (not import
time), so monkeypatching the flag exercises both the numba-present and
numba-absent paths honestly — and the kernel bodies are plain Python
when numba is absent, so scoring through a "selected" JIT kernel still
works (slowly) on tiny workloads.
"""

import pytest

from repro.optim.evaluation import EvaluationService
from repro.schedule import backend as backend_mod
from repro.schedule import jit as jit_mod
from repro.schedule import make_simulator, random_valid_string
from repro.schedule.backend import batch_kernel_factory, kernel_tier
from repro.schedule.jit import (
    JitBatchSimulator,
    JitContentionBatchSimulator,
    jit_selected,
    numba_available,
    requested_kernel,
    warmup,
)
from repro.workloads import small_workload


@pytest.fixture
def w():
    return small_workload(seed=3)


class TestOverrideValidation:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert requested_kernel() == "auto"

    @pytest.mark.parametrize("raw", ["auto", "JIT", " numpy "])
    def test_known_modes_normalised(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", raw)
        assert requested_kernel() == raw.strip().lower()

    def test_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numba")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            requested_kernel()

    def test_jit_demand_without_numba_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "jit")
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", False)
        with pytest.raises(ValueError, match="numba is not installed"):
            jit_selected()

    def test_jit_demand_with_numba_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "jit")
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert jit_selected() is True

    def test_numpy_pin_never_selects_jit(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert jit_selected() is False

    def test_auto_follows_availability(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert jit_selected() is True
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", False)
        assert jit_selected() is False
        assert numba_available() is False


class TestTierSelection:
    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_numba_present_selects_jit(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert kernel_tier(network) == "jit"

    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_numba_absent_selects_numpy(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", False)
        assert kernel_tier(network) == "vectorized"

    def test_no_kernels_at_all_is_sequential(self, monkeypatch):
        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        monkeypatch.delitem(backend_mod._JIT_NETWORKS, "nic")
        assert kernel_tier("nic") == "sequential"

    def test_factory_returns_jit_classes_when_selected(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert batch_kernel_factory("contention-free") is JitBatchSimulator
        assert batch_kernel_factory("nic") is JitContentionBatchSimulator

    def test_factory_returns_numpy_classes_otherwise(self, monkeypatch):
        from repro.schedule.vectorized import BatchSimulator
        from repro.schedule.vectorized_contention import (
            ContentionBatchSimulator,
        )

        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert batch_kernel_factory("contention-free") is BatchSimulator
        assert batch_kernel_factory("nic") is ContentionBatchSimulator

    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_make_simulator_builds_jit_backend(self, network, w, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        backend = make_simulator(w, network, batch=True)
        assert backend.kernel_tier == "jit"
        assert backend.is_vectorized
        s = random_valid_string(w.graph, w.num_machines, 0)
        scalar = make_simulator(w, network)
        got = backend.batch_string_makespans([s])
        assert got.tolist() == [scalar.string_makespan(s)]

    def test_initial_state_still_routes_sequential(self, w, monkeypatch):
        """Busy-machine backends never ride a kernel, jit or numpy."""
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        backend = make_simulator(
            w, batch=True, initial_avail=[1.0] * w.num_machines
        )
        assert backend.kernel_tier == "sequential"
        assert not backend.is_vectorized


class TestRegistration:
    def test_duplicate_jit_registration_rejected(self):
        backend_mod._ensure_builtins()
        with pytest.raises(ValueError, match="already registered"):
            backend_mod.register_jit_network("nic")(object)

    def test_builtin_networks_have_jit_kernels(self):
        backend_mod._ensure_builtins()
        assert set(backend_mod._JIT_NETWORKS) == {"contention-free", "nic"}

    def test_kernel_tier_attribute(self):
        assert JitBatchSimulator.kernel_tier == "jit"
        assert JitContentionBatchSimulator.kernel_tier == "jit"


class TestServiceReporting:
    def test_service_reports_tier(self, w, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", False)
        assert EvaluationService(w).kernel_tier == "vectorized"
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        assert EvaluationService(w).kernel_tier == "jit"

    def test_service_sequential_when_batch_disabled(self, w):
        svc = EvaluationService(w, prefer_batch=False)
        assert svc.kernel_tier == "sequential"
        assert not svc.is_vectorized

    def test_objective_backend_forwards_tier(self, w, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        svc = EvaluationService(
            w, objective="weighted:0.7:0.3", platform="uniform"
        )
        assert svc.kernel_tier == "jit"

    def test_scenario_backend_forwards_tier(self, w, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        svc = EvaluationService(
            w,
            objective="mean",
            scenarios=2,
            distribution="uniform:0.2",
            scenario_seed=7,
        )
        assert svc.kernel_tier == "jit"


class TestWarmup:
    def test_warmup_reports_availability_and_is_idempotent(self):
        assert warmup() is numba_available()
        assert warmup() is numba_available()

    def test_warmup_accepts_explicit_workload(self, w):
        assert warmup(w) is numba_available()
