"""Unit tests for the schedule simulator (the cost model)."""

import numpy as np
import pytest

from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.schedule.encoding import ScheduleString
from repro.schedule.simulator import (
    InvalidScheduleError,
    Simulator,
    evaluate_schedule,
)


def make_workload(edges, e_rows, tr_rows, k=None, l=None):
    k = k if k is not None else len(e_rows[0])
    l = l if l is not None else len(e_rows)
    graph = TaskGraph.from_edges(k, edges)
    e = ExecutionTimeMatrix(e_rows)
    tr = TransferTimeMatrix(tr_rows, l)
    return Workload(graph, HCSystem.of_size(l), e, tr)


class TestHandComputedSchedules:
    def test_two_independent_tasks_two_machines(self):
        w = make_workload([], [[3.0, 4.0], [5.0, 2.0]], np.zeros((1, 0)))
        s = ScheduleString([0, 1], [0, 1], 2)
        sched = Simulator(w).evaluate(s)
        assert sched.start == (0.0, 0.0)
        assert sched.finish == (3.0, 2.0)
        assert sched.makespan == 3.0

    def test_two_tasks_same_machine_serialize(self):
        w = make_workload([], [[3.0, 4.0], [5.0, 2.0]], np.zeros((1, 0)))
        s = ScheduleString([1, 0], [0, 0], 2)
        sched = Simulator(w).evaluate(s)
        assert sched.start[1] == 0.0
        assert sched.finish[1] == 4.0
        assert sched.start[0] == 4.0
        assert sched.makespan == 7.0

    def test_cross_machine_communication_charged(self):
        # s0 -> s1 with transfer 10; machines differ
        w = make_workload([(0, 1)], [[5.0, 5.0], [5.0, 5.0]], [[10.0]])
        s = ScheduleString([0, 1], [0, 1], 2)
        sched = Simulator(w).evaluate(s)
        assert sched.start[1] == pytest.approx(15.0)  # 5 finish + 10 comm
        assert sched.makespan == pytest.approx(20.0)

    def test_same_machine_communication_free(self):
        w = make_workload([(0, 1)], [[5.0, 5.0], [5.0, 5.0]], [[10.0]])
        s = ScheduleString([0, 1], [0, 0], 2)
        sched = Simulator(w).evaluate(s)
        assert sched.start[1] == pytest.approx(5.0)
        assert sched.makespan == pytest.approx(10.0)

    def test_machine_busy_dominates_data_ready(self):
        # s0 -> s2 cross machine; s1 occupies s2's machine until t=20
        w = make_workload(
            [(0, 2)],
            [[5.0, 20.0, 1.0], [5.0, 20.0, 1.0]],
            [[2.0]],
        )
        s = ScheduleString([0, 1, 2], [0, 1, 1], 2)
        sched = Simulator(w).evaluate(s)
        # data ready at 5+2=7, machine 1 free at 20 -> start 20
        assert sched.start[2] == pytest.approx(20.0)

    def test_diamond_join_waits_for_slowest_input(self, diamond_workload):
        s = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 2)
        sched = Simulator(diamond_workload).evaluate(s)
        # all on m0: s0=10, s1 at 30, s2 at 60, s3 starts at 60
        assert sched.finish[0] == 10.0
        assert sched.finish[1] == 30.0
        assert sched.finish[2] == 60.0
        assert sched.start[3] == 60.0
        assert sched.makespan == 70.0

    def test_diamond_split_across_machines(self, diamond_workload):
        s = ScheduleString([0, 1, 2, 3], [0, 1, 0, 0], 2)
        sched = Simulator(diamond_workload).evaluate(s)
        # s1 on m1: data ready 10+5=15, runs 10 -> 25; arrival on m0: 25+5=30
        # s2 on m0: starts 10, runs 30 -> 40
        # s3 on m0: max(40 machine, max(30, 45)) -> hmm s2 finish 40, arrival 40
        assert sched.finish[1] == 25.0
        assert sched.finish[2] == 40.0
        assert sched.start[3] == 40.0
        assert sched.makespan == 50.0

    def test_single_machine_chain_sums(self, single_machine_workload):
        s = ScheduleString([0, 1, 2, 3, 4], [0] * 5, 1)
        sched = Simulator(single_machine_workload).evaluate(s)
        assert sched.makespan == pytest.approx(3 + 4 + 5 + 6 + 7)


class TestParallelDataItems:
    def test_both_items_charged(self):
        # two data items on the same edge with different costs
        graph = TaskGraph.from_edges(2, [(0, 1), (0, 1)])
        e = ExecutionTimeMatrix([[1.0, 1.0], [1.0, 1.0]])
        tr = TransferTimeMatrix([[3.0, 8.0]], 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        s = ScheduleString([0, 1], [0, 1], 2)
        sched = Simulator(w).evaluate(s)
        # slower item dominates: 1 + 8 = 9
        assert sched.start[1] == pytest.approx(9.0)


class TestInvalidOrders:
    def test_consumer_before_producer_raises(self):
        w = make_workload([(0, 1)], [[1.0, 1.0]], np.zeros((0, 1)), l=1)
        s = ScheduleString([1, 0], [0, 0], 1)
        with pytest.raises(InvalidScheduleError, match="before its producer"):
            Simulator(w).evaluate(s)

    def test_makespan_raises_too(self):
        w = make_workload([(0, 1)], [[1.0, 1.0]], np.zeros((0, 1)), l=1)
        with pytest.raises(InvalidScheduleError):
            Simulator(w).makespan([1, 0], [0, 0])


class TestAPIs:
    def test_makespan_matches_evaluate(self, sample_workload):
        from repro.model import FIGURE2_PAIRS

        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        sim = Simulator(sample_workload)
        assert sim.makespan(s.order, s.machines) == sim.evaluate(s).makespan
        assert sim.string_makespan(s) == sim.evaluate(s).makespan

    def test_finish_times_list(self, sample_workload):
        from repro.model import FIGURE2_PAIRS

        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        sim = Simulator(sample_workload)
        fts = sim.finish_times(s)
        assert len(fts) == 7
        assert max(fts) == sim.evaluate(s).makespan

    def test_evaluate_schedule_one_shot(self, sample_workload):
        from repro.model import FIGURE2_PAIRS

        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        assert (
            evaluate_schedule(sample_workload, s).makespan
            == Simulator(sample_workload).evaluate(s).makespan
        )

    def test_schedule_machine_sequence(self, diamond_workload):
        s = ScheduleString([0, 1, 2, 3], [0, 1, 0, 1], 2)
        sched = Simulator(diamond_workload).evaluate(s)
        assert sched.machine_sequence(0) == [0, 2]
        assert sched.machine_sequence(1) == [1, 3]

    def test_simulator_reusable_across_strings(self, diamond_workload):
        sim = Simulator(diamond_workload)
        a = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 2)
        b = ScheduleString([0, 2, 1, 3], [0, 1, 1, 0], 2)
        ma = sim.string_makespan(a)
        mb = sim.string_makespan(b)
        assert sim.string_makespan(a) == ma  # no cross-call state leakage
        assert sim.string_makespan(b) == mb
