"""Unit tests for the pluggable simulator-backend registry."""

import pytest

from repro.extensions.contention import ContentionSimulator
from repro.schedule import (
    DEFAULT_NETWORK,
    NIC_NETWORK,
    Simulator,
    SimulatorBackend,
    available_networks,
    make_simulator,
    plain_schedule,
    register_network,
)
from repro.workloads import WorkloadSpec, build_workload


@pytest.fixture
def workload():
    return build_workload(WorkloadSpec(num_tasks=12, num_machines=3, seed=7))


class TestRegistry:
    def test_builtin_networks(self):
        assert available_networks() == ["contention-free", "nic"]

    def test_factory_types(self, workload):
        assert isinstance(make_simulator(workload), Simulator)
        assert isinstance(
            make_simulator(workload, DEFAULT_NETWORK), Simulator
        )
        assert isinstance(
            make_simulator(workload, NIC_NETWORK), ContentionSimulator
        )

    def test_names_are_case_insensitive(self, workload):
        assert isinstance(make_simulator(workload, "NIC"), ContentionSimulator)

    def test_unknown_network_lists_choices(self, workload):
        with pytest.raises(ValueError, match="available"):
            make_simulator(workload, "infiniband")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_network("nic")(ContentionSimulator)

    def test_backends_satisfy_protocol(self, workload):
        for name in available_networks():
            sim = make_simulator(workload, name)
            assert isinstance(sim, SimulatorBackend)
            for method in (
                "makespan",
                "string_makespan",
                "evaluate",
                "prepare",
                "prepare_string",
                "evaluate_delta",
                "finish_times",
            ):
                assert callable(getattr(sim, method)), (name, method)
            assert sim.workload is workload


class TestPlainSchedule:
    def test_unwraps_both_backends(self, workload):
        from repro.schedule import Schedule, random_valid_string

        s = random_valid_string(workload.graph, workload.num_machines, 3)
        for name in available_networks():
            sched = plain_schedule(make_simulator(workload, name).evaluate(s))
            assert isinstance(sched, Schedule)
            assert sched.makespan == max(sched.finish)

    def test_rejects_non_schedules(self):
        with pytest.raises(TypeError, match="Schedule"):
            plain_schedule(42)


class TestConfigsCarryNetwork:
    def test_se_config_network_validated(self):
        from repro.core import SEConfig

        assert SEConfig().network == DEFAULT_NETWORK
        assert SEConfig(network="nic").network == "nic"
        with pytest.raises(ValueError, match="network"):
            SEConfig(network="")

    def test_ga_config_network_validated(self):
        from repro.baselines import GAConfig

        assert GAConfig().network == DEFAULT_NETWORK
        with pytest.raises(ValueError, match="network"):
            GAConfig(network="")

    def test_unknown_network_surfaces_at_run_time(self, workload):
        from repro.core import SEConfig, run_se

        with pytest.raises(ValueError, match="unknown network"):
            run_se(workload, SEConfig(seed=0, network="warp-drive"))
