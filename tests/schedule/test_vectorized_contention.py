"""Unit tests of the vectorized NIC-contention batch kernel.

Covers the edge cases the property tests are unlikely to pin exactly:
empty batches, single-task graphs, duplicate-cost ties against the
scalar event order, zero-cost and same-machine transfers, validation
errors, the shared :class:`WorkloadPack` plumbing, and the
``evaluations`` accounting the engines rely on when they inherit the
kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.contention import ContentionSimulator
from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.optim import EvaluationService
from repro.schedule import (
    BatchSimulator,
    InvalidScheduleError,
    random_valid_string,
)
from repro.schedule.vectorized import WorkloadPack
from repro.schedule.vectorized_contention import ContentionBatchSimulator


def diamond_workload(transfer: float = 4.0, num_machines: int = 3):
    """0 -> {1, 2} -> 3 with uniform costs (easy to reason about)."""
    graph = TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    e = ExecutionTimeMatrix(
        np.full((num_machines, 4), 2.0)
        + np.arange(num_machines)[:, None]
    )
    tr = TransferTimeMatrix.uniform(num_machines, 4, transfer)
    return Workload(graph, HCSystem.of_size(num_machines), e, tr)


def single_task_workload():
    graph = TaskGraph.from_edges(1, [])
    e = ExecutionTimeMatrix([[3.0], [5.0]])
    tr = TransferTimeMatrix.zeros(2, 0)
    return Workload(graph, HCSystem.of_size(2), e, tr)


def fan_out_workload(num_machines: int = 3):
    """0 -> {1, 2, 3, 4}: one producer pushing four items through one NIC.

    The serialisation chain (``nf = max(fin, nf) + Tr`` per item, in
    item order) is the behaviour the kernel must replicate exactly.
    """
    graph = TaskGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    e = ExecutionTimeMatrix(np.full((num_machines, 5), 2.0))
    tr = TransferTimeMatrix.uniform(num_machines, 4, 5.0)
    return Workload(graph, HCSystem.of_size(num_machines), e, tr)


class TestContentionKernelEdges:
    def test_empty_batch(self):
        kern = ContentionBatchSimulator(diamond_workload())
        assert kern.makespans([], []).shape == (0,)
        assert kern.string_makespans([]).shape == (0,)

    def test_single_task_graph(self):
        w = single_task_workload()
        kern = ContentionBatchSimulator(w)
        out = kern.makespans([[0], [0]], [[0], [1]])
        assert out.tolist() == [3.0, 5.0]

    def test_single_machine_has_no_transfers(self):
        w = diamond_workload(num_machines=1)
        kern = ContentionBatchSimulator(w)
        sim = ContentionSimulator(w)
        s = random_valid_string(w.graph, 1, 5)
        assert kern.string_makespans([s]).tolist() == [
            sim.string_makespan(s)
        ]

    def test_nic_serialisation_chain_matches_scalar(self):
        w = fan_out_workload()
        kern = ContentionBatchSimulator(w)
        sim = ContentionSimulator(w)
        strings = [random_valid_string(w.graph, 3, s) for s in range(30)]
        got = kern.string_makespans(strings)
        assert got.tolist() == [sim.string_makespan(s) for s in strings]

    def test_zero_transfers_degrade_to_contention_free_kernel(self):
        w = diamond_workload(transfer=0.0)
        nic = ContentionBatchSimulator(w)
        free = BatchSimulator(w)
        strings = [random_valid_string(w.graph, 3, s) for s in range(20)]
        assert (
            nic.string_makespans(strings).tolist()
            == free.string_makespans(strings).tolist()
        )

    def test_all_tasks_on_one_machine_skips_pushes(self):
        # every push is same-machine: the kernel runs them as stored
        # zero-duration transfers, the scalar walk skips them — the
        # makespans must still agree bit for bit
        w = diamond_workload()
        kern = ContentionBatchSimulator(w)
        sim = ContentionSimulator(w)
        for m in range(3):
            machines = [m] * 4
            got = kern.makespans([[0, 1, 2, 3]], [machines])
            assert got.tolist() == [sim.makespan([0, 1, 2, 3], machines)]

    def test_duplicate_cost_ties_match_scalar_event_order(self):
        """Uniform costs produce equal-availability / equal-arrival
        ties everywhere; the kernel's max-reductions must resolve them
        to the same floats as the scalar walk's sequential event
        order."""
        w = fan_out_workload()
        sim = ContentionSimulator(w)
        kern = ContentionBatchSimulator(w)
        orders, machines = [], []
        for s in range(12):
            x = random_valid_string(w.graph, 3, s)
            orders.append(list(x.order))
            machines.append(list(x.machines))
        got = kern.makespans(orders, machines)
        want = [sim.makespan(o, m) for o, m in zip(orders, machines)]
        assert got.tolist() == want
        # and rows with identical schedules stay bitwise identical
        rep = kern.makespans([orders[0]] * 3, [machines[0]] * 3)
        assert rep[0] == rep[1] == rep[2]
        assert int(np.argmin(rep)) == 0  # first occurrence wins

    def test_chunk_size_invariance(self):
        w = diamond_workload()
        strings = [random_valid_string(w.graph, 3, s) for s in range(10)]
        full = ContentionBatchSimulator(w).string_makespans(strings)
        saved = ContentionBatchSimulator.chunk_size
        try:
            for chunk in (1, 2, 3, 7):
                ContentionBatchSimulator.chunk_size = chunk
                part = ContentionBatchSimulator(w).string_makespans(strings)
                assert part.tolist() == full.tolist()
        finally:
            ContentionBatchSimulator.chunk_size = saved

    def test_scratch_reused_across_calls(self):
        w = diamond_workload()
        kern = ContentionBatchSimulator(w)
        s = random_valid_string(w.graph, 3, 1)
        first = kern.string_makespans([s])
        scratch = kern._scratch
        assert scratch is not None
        again = kern.string_makespans([s, s])
        assert kern._scratch is scratch  # same buffers, no realloc
        assert again.tolist() == [first[0], first[0]]

    def test_accepts_arrays_and_lists(self):
        w = diamond_workload()
        kern = ContentionBatchSimulator(w)
        s = random_valid_string(w.graph, 3, 2)
        from_lists = kern.makespans([s.order], [s.machines])
        from_arrays = kern.makespans(
            np.array([s.order]), np.array([s.machines])
        )
        assert from_lists.tolist() == from_arrays.tolist()


class TestContentionKernelValidation:
    def test_rejects_non_permutation(self):
        kern = ContentionBatchSimulator(diamond_workload())
        with pytest.raises(InvalidScheduleError, match="permutation"):
            kern.makespans([[0, 1, 1, 3]], [[0, 0, 0, 0]])

    def test_rejects_precedence_violation(self):
        kern = ContentionBatchSimulator(diamond_workload())
        with pytest.raises(InvalidScheduleError, match="producer"):
            kern.makespans([[1, 0, 2, 3]], [[0, 0, 0, 0]])

    def test_rejects_machine_out_of_range(self):
        kern = ContentionBatchSimulator(diamond_workload())
        with pytest.raises(ValueError, match="machine ids"):
            kern.makespans([[0, 1, 2, 3]], [[0, 0, 0, 3]])

    def test_rejects_shape_mismatch(self):
        kern = ContentionBatchSimulator(diamond_workload())
        with pytest.raises(ValueError, match="shape"):
            kern.makespans([[0, 1, 2]], [[0, 0, 0, 0]])
        with pytest.raises(ValueError, match="rows"):
            kern.makespans([[0, 1, 2, 3]], [[0, 0, 0, 0], [0, 0, 0, 0]])

    def test_validate_false_skips_checks(self):
        kern = ContentionBatchSimulator(diamond_workload())
        out = kern.makespans(
            [[1, 0, 2, 3]], [[0, 0, 0, 0]], validate=False
        )
        assert out.shape == (1,)


class TestSharedWorkloadPack:
    def test_both_kernels_can_share_one_pack(self):
        w = diamond_workload()
        pack = WorkloadPack(w)
        free = BatchSimulator(w, pack=pack)
        nic = ContentionBatchSimulator(w, pack=pack)
        assert free._pack is pack and nic._pack is pack
        s = random_valid_string(w.graph, 3, 4)
        assert free.string_makespans([s]).shape == (1,)
        assert nic.string_makespans([s]).shape == (1,)

    def test_out_tables_cached(self):
        pack = WorkloadPack(diamond_workload())
        assert pack.out_tables() is pack.out_tables()

    def test_out_tables_item_order_is_ascending(self):
        # the NIC push order contract: per task, ascending item index
        pack = WorkloadPack(fan_out_workload())
        pad_out_item, _, _, out_deg, _ = pack.out_tables()
        d = int(out_deg[0])
        lanes = pad_out_item[0, :d].tolist()
        assert lanes == sorted(lanes)

    def test_sentinel_slots_distinct(self):
        # in-edge sentinels read slot p (pinned 0.0); out-edge sentinels
        # write slot p+1 — they must never collide, or a padded push
        # would corrupt the pinned zero that padded reads depend on
        pack = WorkloadPack(diamond_workload())
        pad_out_item, pad_out_slot, pad_out_cons, out_deg, Do = (
            pack.out_tables()
        )
        p = pack.num_items
        for t in range(pack.k):
            for j in range(int(out_deg[t]), Do):
                assert pad_out_item[t, j] == p
                assert pad_out_slot[t, j] == p + 1
                assert pad_out_cons[t, j] == pack.k


class TestServiceAccountingUnderNic:
    def test_batch_counts_one_per_schedule(self):
        w = diamond_workload()
        svc = EvaluationService(w, "nic")
        assert svc.is_vectorized
        strings = [random_valid_string(w.graph, 3, s) for s in range(5)]
        costs = svc.batch_string_makespans(strings)
        assert svc.evaluations == len(strings)
        ref = ContentionSimulator(w)
        assert costs == [ref.string_makespan(s) for s in strings]

    def test_accounting_identical_to_scalar_fallback(self, monkeypatch):
        # the regression the ISSUE asks for: flipping the kernel on must
        # not change what runners record in their `evaluations` columns
        from repro.schedule import backend as backend_mod

        w = diamond_workload()
        strings = [random_valid_string(w.graph, 3, s) for s in range(7)]
        fast = EvaluationService(w, "nic")
        fast_costs = fast.batch_string_makespans(strings)
        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        slow = EvaluationService(w, "nic")
        assert not slow.is_vectorized
        slow_costs = slow.batch_string_makespans(strings)
        assert fast_costs == slow_costs
        assert fast.evaluations == slow.evaluations == len(strings)
