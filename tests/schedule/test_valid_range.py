"""Unit tests for valid-range computation and slot enumeration."""

import pytest

from repro.model.graph import TaskGraph
from repro.schedule.encoding import ScheduleString
from repro.schedule.valid_range import (
    assert_in_valid_range,
    machine_slot_indices,
    range_width,
    valid_insertion_range,
)


@pytest.fixture
def chain():
    return TaskGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def diamond():
    return TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestValidInsertionRange:
    def test_chain_every_task_pinned(self, chain):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        for t in range(4):
            lo, hi = valid_insertion_range(s, chain, t)
            assert (lo, hi) == (t, t)

    def test_diamond_middle_tasks_can_swap(self, diamond):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        assert valid_insertion_range(s, diamond, 1) == (1, 2)
        assert valid_insertion_range(s, diamond, 2) == (1, 2)

    def test_no_predecessors_lo_zero(self, diamond):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        lo, _ = valid_insertion_range(s, diamond, 0)
        assert lo == 0

    def test_no_successors_hi_max(self):
        g = TaskGraph.from_edges(3, [(0, 1)])
        s = ScheduleString([0, 1, 2], [0] * 3, 1)
        _, hi = valid_insertion_range(s, g, 2)
        assert hi == 2

    def test_independent_task_full_range(self):
        g = TaskGraph.from_edges(3, [(0, 1)])
        s = ScheduleString([0, 2, 1], [0] * 3, 1)
        assert valid_insertion_range(s, g, 2) == (0, 2)

    def test_current_position_always_inside(self, diamond):
        s = ScheduleString([0, 2, 1, 3], [0] * 4, 1)
        for t in range(4):
            lo, hi = valid_insertion_range(s, diamond, t)
            assert lo <= s.position_of(t) <= hi

    def test_brute_force_agreement(self, diamond):
        """The analytic window equals the brute-force valid-move set."""
        s = ScheduleString([0, 2, 1, 3], [0] * 4, 1)
        for t in range(4):
            lo, hi = valid_insertion_range(s, diamond, t)
            for idx in range(4):
                probe = s.copy()
                probe.move(t, idx)
                valid = diamond.is_valid_order(probe.order)
                assert valid == (lo <= idx <= hi), (t, idx)

    def test_range_width(self, diamond):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        assert range_width(s, diamond, 1) == 2
        assert range_width(s, diamond, 0) == 1

    def test_assert_in_valid_range_raises(self, chain):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        with pytest.raises(ValueError, match="outside"):
            assert_in_valid_range(s, chain, 0, 2)

    def test_assert_in_valid_range_passes(self, chain):
        s = ScheduleString([0, 1, 2, 3], [0] * 4, 1)
        assert_in_valid_range(s, chain, 2, 2)


class TestMachineSlotIndices:
    def test_slots_within_valid_range(self, diamond):
        s = ScheduleString([0, 1, 2, 3], [0, 0, 1, 0], 2)
        for t in range(4):
            lo, hi = valid_insertion_range(s, diamond, t)
            for m in range(2):
                for idx in machine_slot_indices(s, diamond, t, m):
                    assert lo <= idx <= hi

    def test_single_slot_when_no_same_machine_neighbours(self, diamond):
        # task 1 moves within [1, 2]; machine 1 has no tasks in the window
        s = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 2)
        assert machine_slot_indices(s, diamond, 1, 1) == [1]

    def test_extra_slot_per_same_machine_task(self, diamond):
        # window of task 1 is [1, 2]; task 2 (the only other in-window
        # task) is on machine 0, so machine 0 offers two distinct slots
        s = ScheduleString([0, 2, 1, 3], [0, 0, 0, 0], 2)
        slots = machine_slot_indices(s, diamond, 1, 0)
        assert slots == [1, 2]

    def test_slots_reach_all_distinct_schedules(self):
        """Slot representatives reach the same set of per-machine orders
        as enumerating every valid position (the ABL-SLOT equivalence)."""
        g = TaskGraph.from_edges(5, [(0, 4)])
        s = ScheduleString([0, 1, 2, 3, 4], [0, 1, 0, 1, 0], 2)
        task = 2
        lo, hi = valid_insertion_range(s, g, task)
        for machine in range(2):
            all_orders = set()
            for idx in range(lo, hi + 1):
                probe = s.copy()
                probe.relocate(task, idx, machine)
                all_orders.add(
                    tuple(tuple(probe.machine_sequence(m)) for m in range(2))
                )
            slot_orders = set()
            for idx in machine_slot_indices(s, g, task, machine):
                probe = s.copy()
                probe.relocate(task, idx, machine)
                slot_orders.add(
                    tuple(tuple(probe.machine_sequence(m)) for m in range(2))
                )
            assert slot_orders == all_orders
