"""Unit tests of the vectorized batch-evaluation tier.

Covers the edge cases the property tests are unlikely to pin exactly:
empty batches, single-task graphs, duplicate-cost ties, zero-cost
transfers, validation errors, and the ``BatchBackend`` /
``make_simulator(..., batch=True)`` plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import Allocator
from repro.extensions.contention import ContentionSimulator
from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.schedule import (
    BatchBackend,
    BatchSimulator,
    InvalidScheduleError,
    SequentialBatchKernel,
    Simulator,
    make_simulator,
    random_valid_string,
    register_batch_network,
)


def diamond_workload(transfer: float = 4.0, num_machines: int = 3):
    """0 -> {1, 2} -> 3 with uniform costs (easy to reason about)."""
    graph = TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    e = ExecutionTimeMatrix(
        np.full((num_machines, 4), 2.0)
        + np.arange(num_machines)[:, None]
    )
    tr = TransferTimeMatrix.uniform(num_machines, 4, transfer)
    return Workload(graph, HCSystem.of_size(num_machines), e, tr)


def single_task_workload():
    graph = TaskGraph.from_edges(1, [])
    e = ExecutionTimeMatrix([[3.0], [5.0]])
    tr = TransferTimeMatrix.zeros(2, 0)
    return Workload(graph, HCSystem.of_size(2), e, tr)


class TestBatchSimulatorEdges:
    def test_empty_batch(self):
        kern = BatchSimulator(diamond_workload())
        out = kern.makespans([], [])
        assert out.shape == (0,)
        assert kern.string_makespans([]).shape == (0,)

    def test_single_task_graph(self):
        w = single_task_workload()
        kern = BatchSimulator(w)
        out = kern.makespans([[0], [0]], [[0], [1]])
        assert out.tolist() == [3.0, 5.0]

    def test_single_machine(self):
        w = diamond_workload(num_machines=1)
        kern = BatchSimulator(w)
        sim = Simulator(w)
        s = random_valid_string(w.graph, 1, 5)
        assert kern.string_makespans([s]).tolist() == [
            sim.string_makespan(s)
        ]

    def test_zero_cost_transfers_match_scalar(self):
        w = diamond_workload(transfer=0.0)
        kern = BatchSimulator(w)
        sim = Simulator(w)
        strings = [random_valid_string(w.graph, 3, s) for s in range(20)]
        got = kern.string_makespans(strings)
        assert got.tolist() == [sim.string_makespan(s) for s in strings]

    def test_duplicate_cost_ties_are_bitwise_equal(self):
        """Identical-by-construction costs compare equal across rows, so
        any first-minimum scan picks the same index as a scalar scan."""
        w = diamond_workload()
        kern = BatchSimulator(w)
        s = random_valid_string(w.graph, 3, 1)
        out = kern.string_makespans([s, s, s])
        assert out[0] == out[1] == out[2]
        assert int(np.argmin(out)) == 0  # first occurrence wins

    def test_accepts_arrays_and_lists(self):
        w = diamond_workload()
        kern = BatchSimulator(w)
        s = random_valid_string(w.graph, 3, 2)
        from_lists = kern.makespans([s.order], [s.machines])
        from_arrays = kern.makespans(
            np.array([s.order]), np.array([s.machines])
        )
        assert from_lists.tolist() == from_arrays.tolist()


class TestBatchValidation:
    def test_rejects_non_permutation(self):
        kern = BatchSimulator(diamond_workload())
        with pytest.raises(InvalidScheduleError, match="permutation"):
            kern.makespans([[0, 1, 1, 3]], [[0, 0, 0, 0]])

    def test_rejects_precedence_violation(self):
        kern = BatchSimulator(diamond_workload())
        with pytest.raises(InvalidScheduleError, match="producer"):
            kern.makespans([[1, 0, 2, 3]], [[0, 0, 0, 0]])

    def test_rejects_machine_out_of_range(self):
        kern = BatchSimulator(diamond_workload())
        with pytest.raises(ValueError, match="machine ids"):
            kern.makespans([[0, 1, 2, 3]], [[0, 0, 0, 3]])

    def test_rejects_shape_mismatch(self):
        kern = BatchSimulator(diamond_workload())
        with pytest.raises(ValueError, match="shape"):
            kern.makespans([[0, 1, 2]], [[0, 0, 0, 0]])
        with pytest.raises(ValueError, match="rows"):
            kern.makespans(
                [[0, 1, 2, 3]], [[0, 0, 0, 0], [0, 0, 0, 0]]
            )

    def test_validate_false_skips_checks(self):
        kern = BatchSimulator(diamond_workload())
        # invalid order scores garbage instead of raising — caller's
        # explicit responsibility, exercised by the SE allocator which
        # only builds provably valid relocations
        out = kern.makespans([[1, 0, 2, 3]], [[0, 0, 0, 0]], validate=False)
        assert out.shape == (1,)


class TestBatchBackendPlumbing:
    def test_make_simulator_plain_is_unwrapped(self):
        w = diamond_workload()
        assert isinstance(make_simulator(w), Simulator)

    def test_make_simulator_batch_contention_free(self):
        w = diamond_workload()
        sim = make_simulator(w, batch=True)
        assert isinstance(sim, BatchBackend)
        assert sim.is_vectorized
        assert isinstance(sim.kernel, BatchSimulator)
        assert isinstance(sim.scalar_backend, Simulator)

    def test_make_simulator_batch_nic_is_vectorized(self):
        from repro.schedule.vectorized_contention import (
            ContentionBatchSimulator,
        )

        w = diamond_workload()
        sim = make_simulator(w, "nic", batch=True)
        assert isinstance(sim, BatchBackend)
        assert sim.is_vectorized
        assert isinstance(sim.kernel, ContentionBatchSimulator)
        assert isinstance(sim.scalar_backend, ContentionSimulator)
        assert sim.kernel.workload is w

    def test_make_simulator_unkernelled_network_falls_back(
        self, monkeypatch
    ):
        # without a registered kernel the wrapper still works — via the
        # sequential scalar loop — and says so via is_vectorized
        from repro.schedule import backend as backend_mod

        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        w = diamond_workload()
        sim = make_simulator(w, "nic", batch=True)
        assert isinstance(sim, BatchBackend)
        assert not sim.is_vectorized
        assert isinstance(sim.kernel, SequentialBatchKernel)
        assert isinstance(sim.scalar_backend, ContentionSimulator)
        assert sim.kernel.workload is w
        assert "sequential" in repr(sim)

    def test_is_vectorized_is_read_only(self):
        w = diamond_workload()
        sim = make_simulator(w, batch=True)
        with pytest.raises(AttributeError):
            sim.is_vectorized = False

    def test_batch_backend_forwards_scalar_tier(self):
        w = diamond_workload()
        plain = Simulator(w)
        sim = make_simulator(w, batch=True)
        s = random_valid_string(w.graph, 3, 3)
        assert sim.workload is w
        assert sim.string_makespan(s) == plain.string_makespan(s)
        state = sim.prepare(s.order, s.machines)
        assert (
            sim.evaluate_delta(s.order, s.machines, 0, state)
            == state.makespan
        )
        assert sim.finish_times(s) == plain.finish_times(s)
        assert "vectorized" in repr(sim)

    def test_batch_makespans_matches_scalar(self):
        w = diamond_workload()
        sim = make_simulator(w, batch=True)
        strings = [random_valid_string(w.graph, 3, s) for s in range(7)]
        got = sim.batch_string_makespans(strings)
        assert got.tolist() == [sim.string_makespan(x) for x in strings]

    def test_register_batch_network_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_batch_network("contention-free")(BatchSimulator)

    def test_allocator_batch_requires_capable_backend(self):
        w = diamond_workload()
        with pytest.raises(ValueError, match="batch-capable"):
            Allocator(w, Simulator(w), y_candidates=2, probes="batch")
        with pytest.raises(ValueError, match="probe strategy"):
            Allocator(w, Simulator(w), y_candidates=2, probes="bogus")

    def test_kernel_properties(self):
        w = diamond_workload()
        kern = BatchSimulator(w)
        assert kern.workload is w
        assert kern.num_tasks == 4
        assert kern.num_machines == 3

    def test_scratch_reuse_across_batch_sizes(self):
        w = diamond_workload()
        kern = BatchSimulator(w)
        sim = Simulator(w)
        for n in (5, 1, 3, 5):
            strings = [
                random_valid_string(w.graph, 3, 100 + n * 10 + i)
                for i in range(n)
            ]
            got = kern.string_makespans(strings)
            assert got.tolist() == [
                sim.string_makespan(x) for x in strings
            ]


class TestConfigValidation:
    def test_se_probe_evaluation_validated(self):
        from repro.core import SEConfig

        assert SEConfig().probe_evaluation == "delta"
        assert SEConfig(probe_evaluation="batch").probe_evaluation == "batch"
        with pytest.raises(ValueError, match="probe_evaluation"):
            SEConfig(probe_evaluation="vector")

    def test_ga_batch_fitness_default_on(self):
        from repro.baselines import GAConfig

        assert GAConfig().batch_fitness is True
        assert GAConfig(batch_fitness=False).batch_fitness is False

    def test_random_search_batch_size_validated(self):
        from repro.baselines.random_search import random_search

        w = diamond_workload()
        with pytest.raises(ValueError, match="batch_size"):
            random_search(w, samples=2, seed=1, batch_size=0)
