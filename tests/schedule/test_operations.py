"""Unit tests for validity-preserving random string operations."""

import pytest

from repro.model.graph import TaskGraph
from repro.schedule.encoding import is_valid_for
from repro.schedule.operations import (
    random_reassign,
    random_topological_order,
    random_valid_move,
    random_valid_string,
    shuffle_string,
)


@pytest.fixture
def graph():
    return TaskGraph.from_edges(
        6, [(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]
    )


class TestRandomTopologicalOrder:
    def test_always_valid(self, graph, rng):
        for _ in range(50):
            order = random_topological_order(graph, rng)
            assert graph.is_valid_order(order)

    def test_covers_multiple_orders(self, graph, rng):
        seen = {tuple(random_topological_order(graph, rng)) for _ in range(60)}
        assert len(seen) > 1  # randomised tie-breaking actually varies

    def test_single_task(self, rng):
        g = TaskGraph.from_edges(1, [])
        assert random_topological_order(g, rng) == [0]


class TestRandomValidMove:
    def test_preserves_validity(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        for _ in range(100):
            random_valid_move(s, graph, rng)
            assert is_valid_for(s, graph)

    def test_returns_moved_task(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        t = random_valid_move(s, graph, rng)
        assert 0 <= t < graph.num_tasks

    def test_explicit_task(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        assert random_valid_move(s, graph, rng, task=2) == 2

    def test_machines_untouched(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        before = list(s.machines)
        random_valid_move(s, graph, rng)
        assert s.machines == before


class TestRandomReassign:
    def test_changes_only_machine(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        order_before = list(s.order)
        random_reassign(s, rng)
        assert s.order == order_before

    def test_explicit_task(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        assert random_reassign(s, rng, task=4) == 4

    def test_machine_in_range(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        for _ in range(50):
            t = random_reassign(s, rng)
            assert 0 <= s.machine_of(t) < 3


class TestRandomValidString:
    def test_valid_for_graph(self, graph):
        for seed in range(20):
            s = random_valid_string(graph, 4, seed)
            assert is_valid_for(s, graph)

    def test_deterministic_for_seed(self, graph):
        a = random_valid_string(graph, 4, 123)
        b = random_valid_string(graph, 4, 123)
        assert a == b

    def test_different_seeds_differ(self, graph):
        results = {
            random_valid_string(graph, 4, seed).pairs() for seed in range(10)
        }
        assert len(results) > 1


class TestShuffleString:
    def test_preserves_validity(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        shuffle_string(s, graph, rng, 200)
        assert is_valid_for(s, graph)

    def test_zero_moves_noop(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        before = s.pairs()
        shuffle_string(s, graph, rng, 0)
        assert s.pairs() == before

    def test_negative_moves_rejected(self, graph, rng):
        s = random_valid_string(graph, 3, rng)
        with pytest.raises(ValueError, match=">= 0"):
            shuffle_string(s, graph, rng, -1)
