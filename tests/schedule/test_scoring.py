"""CostModel / ScheduleScore / BatchScores — the billing arithmetic.

Cost is per-task (``price[machine] * scaled exec time``, summed), so it
depends on the matching string alone; the batch tier's ``batch_costs``
must reproduce the scalar loop bit for bit, since the vectorized cost
column rides the same guarantee the batch makespan kernels pin.
"""

import numpy as np
import pytest

from repro.schedule import make_simulator
from repro.schedule.operations import random_valid_string
from repro.schedule.scoring import BatchScores, CostModel, ScheduleScore
from repro.workloads import WorkloadSpec, build_workload

E = np.array([[2.0, 4.0, 1.0], [1.0, 1.0, 5.0]])
PRICES = [0.1, 1.0]


@pytest.fixture
def cm():
    return CostModel(E, PRICES)


class TestValidation:
    def test_exec_times_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            CostModel(np.ones(3), [0.1])

    def test_price_length_must_match_machines(self):
        with pytest.raises(ValueError, match="prices"):
            CostModel(E, [0.1])

    def test_prices_must_be_finite_nonnegative(self):
        with pytest.raises(ValueError, match="prices"):
            CostModel(E, [0.1, -1.0])
        with pytest.raises(ValueError, match="prices"):
            CostModel(E, [0.1, float("nan")])


class TestScalarTier:
    def test_cost_is_per_task_billing(self, cm):
        # task 0 on m0 (2.0*0.1), task 1 on m1 (1.0*1.0), task 2 on m0
        assert cm.cost([0, 1, 0]) == pytest.approx(0.2 + 1.0 + 0.1)

    def test_busy_times_bincount(self, cm):
        assert cm.busy_times([0, 1, 0]) == (3.0, 1.0)
        assert cm.busy_times([1, 1, 1]) == (0.0, 7.0)

    def test_score_assembles_triple(self, cm):
        s = cm.score([0, 1, 0], makespan=9.5)
        assert isinstance(s, ScheduleScore)
        assert s.makespan == 9.5
        assert s.cost == pytest.approx(1.3)
        assert s.busy == (3.0, 1.0)
        assert s.point == (9.5, s.cost)

    def test_zero_model_is_free(self):
        z = CostModel.zero(E)
        assert z.is_free
        assert z.cost([1, 0, 1]) == 0.0
        assert z.busy_times([1, 0, 1]) == (4.0, 6.0)  # busy still real

    def test_is_free_reflects_prices(self, cm):
        assert not cm.is_free


class TestBatchTier:
    def test_batch_costs_match_scalar_loop_bit_for_bit(self):
        rng = np.random.default_rng(0)
        l, k = 7, 40
        model = CostModel(
            rng.uniform(0.5, 50.0, size=(l, k)), rng.uniform(0, 2, size=l)
        )
        machines = rng.integers(0, l, size=(64, k))
        assert model.batch_costs(machines).tolist() == [
            model.cost(row) for row in machines
        ]

    def test_batch_shape_validated(self, cm):
        with pytest.raises(ValueError, match="machines"):
            cm.batch_costs(np.zeros((4, 99), dtype=int))
        with pytest.raises(ValueError, match="machines"):
            cm.batch_costs(np.zeros(3, dtype=int))

    def test_batch_scores_container(self):
        bs = BatchScores(
            makespans=np.array([1.0, 2.0]), costs=np.array([0.1, 0.2])
        )
        assert len(bs) == 2


class TestBackendIntegration:
    """The priced backend's scores agree with a hand-built CostModel."""

    @pytest.fixture
    def workload(self):
        return build_workload(
            WorkloadSpec(num_tasks=14, num_machines=4, seed=3)
        )

    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    def test_batch_scores_agree_with_scalar_scores(self, workload, network):
        sim = make_simulator(workload, network, batch=True, platform="spot")
        rng = np.random.default_rng(9)
        strings = [
            random_valid_string(workload.graph, workload.num_machines, rng)
            for _ in range(16)
        ]
        scores = sim.batch_string_scores(strings)
        singles = [sim.string_score(s) for s in strings]
        assert scores.makespans.tolist() == [s.makespan for s in singles]
        assert scores.costs.tolist() == [s.cost for s in singles]

    def test_backend_cost_matches_hand_model(self, workload):
        sim = make_simulator(workload, platform="spot")
        hand = CostModel(
            sim.workload.exec_times.values, sim.cost_model.prices
        )
        rng = np.random.default_rng(4)
        s = random_valid_string(workload.graph, workload.num_machines, rng)
        assert sim.string_score(s).cost == hand.cost(s.machines)
