"""Regression tests for registry/runner parameter handling.

Covers the PR-1 follow-up bug batch: a pinned ``seed`` param crashing
deterministic baselines in the worker, ``seed=True`` being recorded as
the effective seed (bool is an int subclass), tmp-file collisions in a
shared cache dir, and the ``network`` selector flowing spec → worker →
recorded cell.
"""

import os

import pytest

from repro.extensions.contention import ContentionSimulator
from repro.runner import (
    AlgorithmSpec,
    ExperimentSpec,
    run_cell,
    run_experiment,
)
from repro.runner.pool import _cache_path, _tmp_path
from repro.schedule import ScheduleString, Simulator
from repro.workloads import WorkloadSpec, build_workload

WORKLOADS = [WorkloadSpec(num_tasks=10, num_machines=3, seed=1, name="w1")]


def one_cell(algo: AlgorithmSpec, name: str = "A"):
    spec = ExperimentSpec(
        name="reg", algorithms={name: algo}, workloads=WORKLOADS
    )
    (cell,) = spec.cells()
    return cell


class TestDeterministicSeedParam:
    @pytest.mark.parametrize("kind", ["heft", "minmin", "maxmin", "olb"])
    def test_pinned_seed_does_not_crash_worker(self, kind):
        """The confirmed PR-1 crash: ``heft() got an unexpected keyword
        argument 'seed'`` whenever a spec pinned a seed on a
        deterministic baseline."""
        result = run_cell(one_cell(AlgorithmSpec.make(kind, seed=3)))
        assert result.makespan > 0

    def test_full_experiment_with_pinned_seed(self):
        """The acceptance-criterion shape, end to end."""
        spec = ExperimentSpec(
            name="pinned",
            algorithms={"HEFT": AlgorithmSpec.make("heft", seed=3)},
            workloads=WORKLOADS,
        )
        result = run_experiment(spec)
        assert len(result) == 1 and result.cells[0].makespan > 0

    def test_pinned_seed_result_matches_unpinned(self):
        """Deterministic baselines ignore the stripped seed entirely."""
        pinned = run_cell(one_cell(AlgorithmSpec.make("heft", seed=3)))
        plain = run_cell(one_cell(AlgorithmSpec.make("heft")))
        assert pinned.makespan == plain.makespan


class TestEffectiveSeedRecording:
    def test_int_pin_is_recorded(self):
        cell = one_cell(AlgorithmSpec.make("se", max_iterations=2, seed=42))
        assert run_cell(cell).seed == 42

    def test_bool_pin_falls_back_to_derived_seed(self):
        """bool passes ``isinstance(x, int)`` — it must still not be
        recorded as the effective seed."""
        cell = one_cell(AlgorithmSpec.make("se", max_iterations=2, seed=True))
        assert run_cell(cell).seed == cell.seed

    def test_none_pin_falls_back_to_derived_seed(self):
        cell = one_cell(AlgorithmSpec.make("se", max_iterations=2, seed=None))
        assert run_cell(cell).seed == cell.seed


class TestTmpFileCollision:
    def test_tmp_name_is_per_process(self, tmp_path):
        cell = one_cell(AlgorithmSpec.make("heft"))
        target = _cache_path(tmp_path, cell, with_traces=False)
        tmp = _tmp_path(target)
        assert str(os.getpid()) in tmp.name
        assert tmp.parent == target.parent
        # two distinct cache targets never share a scratch path
        other = _cache_path(tmp_path, cell, with_traces=True)
        assert _tmp_path(other) != tmp

    def test_cache_roundtrip_leaves_no_scratch_files(self, tmp_path):
        spec = ExperimentSpec(
            name="cache",
            algorithms={"HEFT": AlgorithmSpec.make("heft")},
            workloads=WORKLOADS,
        )
        run_experiment(spec, cache_dir=tmp_path)
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestNetworkFlow:
    def test_network_recorded_and_measured(self):
        w = build_workload(WORKLOADS[0])
        nic = run_cell(one_cell(AlgorithmSpec.make("heft", network="nic")))
        free = run_cell(one_cell(AlgorithmSpec.make("heft")))
        assert nic.network == "nic"
        assert free.network == "contention-free"
        doc = nic.extras["best_string"]
        s = ScheduleString(doc["order"], doc["machines"], w.num_machines)
        assert nic.makespan == ContentionSimulator(w).string_makespan(s)

    def test_se_under_nic_through_runner(self):
        w = build_workload(WORKLOADS[0])
        cell = one_cell(
            AlgorithmSpec.make("se", max_iterations=5, network="nic")
        )
        res = run_cell(cell)
        assert res.network == "nic"
        doc = res.extras["best_string"]
        s = ScheduleString(doc["order"], doc["machines"], w.num_machines)
        assert res.makespan == ContentionSimulator(w).string_makespan(s)
        # and a contention-free run of the same cell scores differently
        # in general, but is always <= under the free model
        assert Simulator(w).string_makespan(s) <= res.makespan + 1e-9

    def test_network_changes_fingerprint(self):
        plain = one_cell(AlgorithmSpec.make("heft"))
        nic = one_cell(AlgorithmSpec.make("heft", network="nic"))
        assert plain.fingerprint() != nic.fingerprint()


class TestNewEngineEntries:
    @pytest.mark.parametrize("kind", ["sa", "tabu"])
    def test_runs_through_run_cell(self, kind):
        res = run_cell(
            one_cell(AlgorithmSpec.make(kind, max_iterations=5, seed=3))
        )
        assert res.makespan > 0
        assert res.iterations == 5
        assert res.stopped_by == "iterations"

    @pytest.mark.parametrize("kind", ["sa", "tabu"])
    def test_nic_network_measured(self, kind):
        w = build_workload(WORKLOADS[0])
        res = run_cell(
            one_cell(
                AlgorithmSpec.make(kind, max_iterations=4, network="nic")
            )
        )
        assert res.network == "nic"
        doc = res.extras["best_string"]
        s = ScheduleString(doc["order"], doc["machines"], w.num_machines)
        assert res.makespan == ContentionSimulator(w).string_makespan(s)

    def test_deterministic_for_fixed_cell_seed(self):
        cell = one_cell(AlgorithmSpec.make("sa", max_iterations=20, seed=5))
        assert run_cell(cell).makespan == run_cell(cell).makespan


class TestAlgorithmParameters:
    def test_engine_params_are_config_fields(self):
        from dataclasses import fields

        from repro.optim import SAConfig, TabuConfig
        from repro.runner import algorithm_parameters

        assert algorithm_parameters("sa") == tuple(
            f.name for f in fields(SAConfig)
        )
        assert algorithm_parameters("tabu") == tuple(
            f.name for f in fields(TabuConfig)
        )

    def test_deterministic_baselines_expose_network(self):
        from repro.runner import algorithm_parameters

        for kind in ("heft", "minmin", "maxmin", "olb"):
            assert algorithm_parameters(kind) == ("network", "platform")

    def test_unknown_name_raises_like_resolve(self):
        from repro.runner import algorithm_parameters

        with pytest.raises(KeyError, match="unknown algorithm"):
            algorithm_parameters("bogus")
