"""Unit tests for experiment specs and deterministic per-cell seeding."""

import pytest

from repro.runner import AlgorithmSpec, ExperimentSpec, derive_seed
from repro.workloads import WorkloadSpec


def _workloads(n=2):
    return [
        WorkloadSpec(num_tasks=10, num_machines=2, seed=i, name=f"w{i}")
        for i in range(n)
    ]


class TestAlgorithmSpec:
    def test_make_normalises_param_order(self):
        a = AlgorithmSpec.make("se", max_iterations=5, y_candidates=2)
        b = AlgorithmSpec.make("se", y_candidates=2, max_iterations=5)
        assert a == b
        assert hash(a) == hash(b)

    def test_params_round_trip(self):
        a = AlgorithmSpec.make("se", max_iterations=5, bias=None)
        assert a.params_dict() == {"max_iterations": 5, "bias": None}
        assert AlgorithmSpec.from_dict(a.to_dict()) == a

    def test_tuple_params_allowed_lists_normalised(self):
        a = AlgorithmSpec.make("se", initial_shuffle_range=(1.0, 3.0))
        b = AlgorithmSpec.make("se", initial_shuffle_range=[1.0, 3.0])
        assert a == b

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError, match="JSON-safe"):
            AlgorithmSpec.make("se", rng=object())

    def test_describe_mentions_params(self):
        assert "max_iterations=5" in AlgorithmSpec.make(
            "se", max_iterations=5
        ).describe()


class TestExperimentSpec:
    def test_grid_pairing_crosses_workloads_and_seeds(self):
        spec = ExperimentSpec(
            name="x",
            algorithms={"A": AlgorithmSpec.make("olb")},
            workloads=_workloads(2),
            seeds=(0, 1, 2),
        )
        assert len(spec) == 6
        assert len(spec.cells()) == 6

    def test_zip_pairing_pairs_elementwise(self):
        spec = ExperimentSpec(
            name="x",
            algorithms={"A": AlgorithmSpec.make("olb")},
            workloads=_workloads(3),
            seeds=(5, 6, 7),
            pairing="zip",
        )
        cells = spec.cells()
        assert len(cells) == 3
        assert [c.workload.name for c in cells] == ["w0", "w1", "w2"]
        assert [c.seed_index for c in cells] == [0, 1, 2]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="zip"):
            ExperimentSpec(
                name="x",
                algorithms={"A": AlgorithmSpec.make("olb")},
                workloads=_workloads(2),
                seeds=(1,),
                pairing="zip",
            )

    def test_duplicate_workload_names_rejected(self):
        w = WorkloadSpec(num_tasks=5, num_machines=2, seed=1, name="dup")
        with pytest.raises(ValueError, match="unique"):
            ExperimentSpec(
                name="x",
                algorithms={"A": AlgorithmSpec.make("olb")},
                workloads=[w, w],
            )

    def test_generator_seeds_rejected(self):
        import numpy as np

        w = WorkloadSpec(
            num_tasks=5, num_machines=2,
            seed=np.random.default_rng(1), name="w",
        )
        with pytest.raises(TypeError, match="non-int seed"):
            ExperimentSpec(
                name="x",
                algorithms={"A": AlgorithmSpec.make("olb")},
                workloads=[w],
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", algorithms={}, workloads=_workloads(1))
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x",
                algorithms={"A": AlgorithmSpec.make("olb")},
                workloads=[],
            )


class TestSeeding:
    def test_derive_seed_is_stable(self):
        # pinned value: must never change across sessions/platforms,
        # or every cached experiment cell would silently re-run
        assert derive_seed(0, "se", "w0", 1) == derive_seed(0, "se", "w0", 1)
        assert derive_seed(0, "se", "w0", 1) != derive_seed(0, "se", "w0", 2)

    def test_cells_get_distinct_seeds(self):
        spec = ExperimentSpec(
            name="x",
            algorithms={
                "A": AlgorithmSpec.make("se", max_iterations=1),
                "B": AlgorithmSpec.make("se", max_iterations=2),
            },
            workloads=_workloads(3),
            seeds=(0, 1),
        )
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == len(seeds)  # no shared RNG streams

    def test_cell_seed_independent_of_expansion_order(self):
        """The derived seed depends only on cell coordinates, so two
        spec expansions agree cell-by-cell."""
        make = lambda: ExperimentSpec(
            name="x",
            algorithms={"A": AlgorithmSpec.make("se", max_iterations=1)},
            workloads=_workloads(2),
            seeds=(4, 9),
        )
        a = {c.cell_id(): c.seed for c in make().cells()}
        b = {c.cell_id(): c.seed for c in make().cells()}
        assert a == b

    def test_fingerprint_changes_with_params(self):
        def cell_for(iters):
            spec = ExperimentSpec(
                name="x",
                algorithms={
                    "A": AlgorithmSpec.make("se", max_iterations=iters)
                },
                workloads=_workloads(1),
            )
            return spec.cells()[0]

        assert cell_for(5).fingerprint() != cell_for(6).fingerprint()
        assert cell_for(5).fingerprint() == cell_for(5).fingerprint()


class TestSeedMode:
    def _spec(self, mode):
        return ExperimentSpec(
            name="x",
            algorithms={
                "Y=5": AlgorithmSpec.make("se", y_candidates=5),
                "Y=9": AlgorithmSpec.make("se", y_candidates=9),
            },
            workloads=_workloads(2),
            seeds=(0, 1),
            seed_mode=mode,
        )

    def test_paired_mode_shares_streams_across_algorithms(self):
        cells = self._spec("paired").cells()
        by_algo = {}
        for c in cells:
            by_algo.setdefault(c.algorithm, []).append(c.seed)
        # same (workload, replicate) coordinate -> same seed for every
        # algorithm: the paired-comparison design
        assert by_algo["Y=5"] == by_algo["Y=9"]

    def test_independent_mode_never_shares_streams(self):
        cells = self._spec("independent").cells()
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)

    def test_unknown_seed_mode_rejected(self):
        with pytest.raises(ValueError, match="seed_mode"):
            self._spec("bogus")


class TestUnnamedWorkloads:
    def test_unnamed_workloads_get_stable_positional_names(self):
        spec = ExperimentSpec(
            name="x",
            algorithms={
                "A": AlgorithmSpec.make("olb"),
                "B": AlgorithmSpec.make("heft"),
            },
            workloads=[WorkloadSpec(num_tasks=5, num_machines=2, seed=1)],
        )
        names = {c.workload_name for c in spec.cells()}
        # one workload keeps ONE identity across algorithms
        assert names == {"w0"}
