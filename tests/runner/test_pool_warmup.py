"""Pool initializer warmup and cache-write cleanup (runner satellites)."""

import json

import pytest

from repro.runner import run_experiment, warmup_worker
from repro.runner.pool import _store_cached, _tmp_path
from repro.runner.results import RESULT_SCHEMA_VERSION
from repro.runner.spec import AlgorithmSpec, ExperimentSpec
from repro.schedule import jit
from repro.workloads import WorkloadSpec


class TestWarmupWorker:
    def test_noop_on_numpy_tier(self, monkeypatch):
        monkeypatch.setattr(jit, "jit_selected", lambda: False)
        assert warmup_worker() is False

    def test_swallows_impossible_jit_request(self, monkeypatch):
        # REPRO_KERNEL=jit without numba raises in jit_selected; the
        # initializer must not re-raise (it would kill the whole pool
        # with a far worse message than the first real evaluation's)
        def boom():
            raise ValueError("REPRO_KERNEL=jit but numba is not importable")

        monkeypatch.setattr(jit, "jit_selected", boom)
        assert warmup_worker() is False

    def test_warms_when_compiled_tier_selected(self, monkeypatch):
        calls = []
        monkeypatch.setattr(jit, "jit_selected", lambda: True)
        monkeypatch.setattr(
            jit, "warmup", lambda workload=None: calls.append(1) or True
        )
        assert warmup_worker() is True
        assert calls == [1]

    def test_runs_in_current_container(self):
        # whatever tier the container has, the initializer must succeed
        assert warmup_worker() in (True, False)

    def test_wired_as_pool_initializer(self):
        import inspect

        from repro.runner import pool

        src = inspect.getsource(pool.run_experiment)
        assert "initializer=warmup_worker" in src


class TestStoreCachedCleanup:
    def spec(self):
        return ExperimentSpec(
            name="cache-cleanup",
            workloads=[
                WorkloadSpec(num_tasks=6, num_machines=2, seed=1, name="w")
            ],
            algorithms={"HEFT": AlgorithmSpec.make("heft")},
            seeds=[0],
        )

    def test_failed_rename_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        from pathlib import Path

        real_replace = Path.replace

        def failing_replace(self, target):
            if str(target).endswith(".json"):
                raise OSError("disk full")
            return real_replace(self, target)

        monkeypatch.setattr(Path, "replace", failing_replace)
        with pytest.raises(OSError, match="disk full"):
            run_experiment(self.spec(), cache_dir=tmp_path)
        # the regression: a failed rename used to strand the scratch file
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        from pathlib import Path

        def failing_write(self, text):
            self.touch()  # half-written file, then the failure
            raise OSError("interrupted")

        monkeypatch.setattr(Path, "write_text", failing_write)
        with pytest.raises(OSError, match="interrupted"):
            run_experiment(self.spec(), cache_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_successful_store_is_atomic_and_loadable(self, tmp_path):
        res = run_experiment(self.spec(), cache_dir=tmp_path)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert not any(f.name.endswith(".tmp") for f in files)
        doc = json.loads(files[0].read_text())
        assert doc["version"] == RESULT_SCHEMA_VERSION
        # resume: the second run serves the cell from cache
        hits = []
        run_experiment(
            self.spec(),
            cache_dir=tmp_path,
            progress=lambda done, total, cell, cached: hits.append(cached),
        )
        assert hits == [True]
        assert res.cells[0].makespan > 0

    def test_tmp_path_is_pid_unique_sibling(self, tmp_path):
        import os

        target = tmp_path / "cell.json"
        tmp = _tmp_path(target)
        assert tmp.parent == target.parent
        assert str(os.getpid()) in tmp.name
        assert tmp.name.endswith(".tmp")

    def test_store_cached_writes_target_only(self, tmp_path):
        cell = run_experiment(self.spec()).cells[0]
        target = tmp_path / "one.json"
        _store_cached(target, cell)
        assert [p.name for p in tmp_path.iterdir()] == ["one.json"]
