"""The platform/cost columns of the runner's result pipeline.

A cell run under a priced platform must record the catalog name and the
winning schedule's dollar cost, carry both through JSON and CSV, and
keep loading cache files written before the columns existed.
"""

import json

from repro.analysis.grid import grid_from_experiment
from repro.baselines import heft
from repro.runner import (
    AlgorithmSpec,
    CellResult,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.workloads import WorkloadSpec, build_workload


def spot_spec():
    return ExperimentSpec(
        name="platform-cols",
        algorithms={
            "HEFT": AlgorithmSpec.make("heft", platform="spot"),
            "HEFT-uniform": AlgorithmSpec.make("heft"),
        },
        workloads=[
            WorkloadSpec(num_tasks=12, num_machines=3, seed=1, name="w1")
        ],
        seeds=(0,),
    )


class TestCells:
    def test_cells_record_platform_and_cost(self):
        result = run_experiment(spot_spec())
        by_algo = {c.algorithm: c for c in result}
        spot = by_algo["HEFT"]
        assert (spot.platform, spot.network) == ("spot", "contention-free")
        w = build_workload(spot_spec().workloads[0])
        ref = heft(w, platform="spot")
        assert (spot.makespan, spot.cost) == (ref.makespan, ref.cost)
        uniform = by_algo["HEFT-uniform"]
        assert uniform.platform == "uniform"
        assert uniform.cost == 0.0

    def test_json_round_trip_keeps_columns(self, tmp_path):
        result = run_experiment(spot_spec())
        back = ExperimentResult.load_json(
            result.save_json(tmp_path / "r.json")
        )
        assert [(c.platform, c.cost) for c in back] == [
            (c.platform, c.cost) for c in result
        ]

    def test_csv_has_platform_and_cost_columns(self, tmp_path):
        result = run_experiment(spot_spec())
        lines = (
            result.save_csv(tmp_path / "r.csv")
            .read_text()
            .strip()
            .splitlines()
        )
        header = lines[0].split(",")
        i_p, i_c = header.index("platform"), header.index("cost")
        cells = {
            row.split(",")[1]: row.split(",") for row in lines[1:]
        }
        assert cells["HEFT"][i_p] == "spot"
        assert float(cells["HEFT"][i_c]) > 0.0
        assert cells["HEFT-uniform"][i_p] == "uniform"

    def test_pre_platform_documents_still_load(self, tmp_path):
        result = run_experiment(spot_spec())
        doc = result.to_dict()
        for cell in doc["cells"]:
            del cell["platform"]
            del cell["cost"]
        p = tmp_path / "old.json"
        p.write_text(json.dumps(doc))
        back = ExperimentResult.load_json(p)
        assert all(c.platform == "uniform" and c.cost == 0.0 for c in back)


class TestGrid:
    def test_grid_cells_carry_platform_and_cost(self):
        grid = grid_from_experiment(run_experiment(spot_spec()))
        spot = [c for c in grid.cells if c.platform == "spot"]
        assert spot and all(c.cost > 0 for c in spot)

    def test_win_loss_platform_filter(self):
        grid = grid_from_experiment(run_experiment(spot_spec()))
        spot = grid.win_loss("HEFT", "HEFT-uniform", platform="spot")
        assert spot.wins + spot.losses + spot.ties == 1
        # HEFT's cells ran on "spot", so the uniform filter drops them all
        none = grid.win_loss("HEFT", "HEFT-uniform", platform="uniform")
        assert none.wins + none.losses + none.ties == 0


def test_cell_result_defaults_are_backward_compatible():
    c = CellResult(
        cell_id="x",
        algorithm="a",
        workload="w",
        connectivity="high",
        heterogeneity="lo",
        ccr="low",
        num_tasks=1,
        num_machines=1,
        seed=0,
        makespan=1.0,
        normalized=1.0,
        evaluations=0,
        iterations=0,
        stopped_by="n/a",
        runtime_seconds=0.0,
    )
    assert (c.platform, c.cost) == ("uniform", 0.0)
