"""Runner-level tests for cross-cell ``WorkloadPack`` reuse.

The satellite contract: a multi-cell sweep packs each distinct
workload once per worker process (cells rebuild workloads from specs,
but the fingerprint-keyed cache recognises them as equal), and results
are byte-identical for any ``REPRO_WORKERS`` — with the cache on, off,
and across worker counts.
"""

import pytest

from repro.runner import AlgorithmSpec, ExperimentSpec, run_experiment
from repro.schedule.vectorized import clear_pack_cache, pack_cache_stats
from repro.workloads import WorkloadSpec


def sweep_spec(networks=("contention-free",), seeds=(0, 1)):
    """Several batch-scoring cells over ONE declarative workload."""
    return ExperimentSpec(
        name="pack-reuse",
        algorithms={
            "GA": AlgorithmSpec.make(
                "ga", max_generations=2, population_size=6
            ),
            "RND": AlgorithmSpec.make("random", max_iterations=12),
        },
        workloads=[
            WorkloadSpec(num_tasks=10, num_machines=3, seed=7, name="w7")
        ],
        seeds=seeds,
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_pack_cache()
    yield
    clear_pack_cache()


class TestPackReuseAcrossCells:
    def test_multi_cell_sweep_packs_once_per_process(self):
        result = run_experiment(sweep_spec(), workers=1)
        assert len(result.cells) == 4  # 2 algos x 2 seeds, one workload
        stats = pack_cache_stats()
        assert stats["misses"] == 1  # one distinct workload -> one pack
        assert stats["hits"] >= 1  # later cells reused it
        assert stats["size"] == 1

    def test_distinct_workloads_pack_separately(self):
        spec = ExperimentSpec(
            name="two-workloads",
            algorithms={
                "RND": AlgorithmSpec.make("random", max_iterations=8)
            },
            workloads=[
                WorkloadSpec(num_tasks=8, num_machines=3, seed=s, name=f"w{s}")
                for s in (1, 2)
            ],
            seeds=(0, 1),
        )
        run_experiment(spec, workers=1)
        stats = pack_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] >= 2


class TestWorkerCountInvariance:
    def _flat(self, result):
        return [(c.cell_id, c.makespan, c.seed) for c in result]

    def test_results_identical_for_any_worker_count(self):
        spec = sweep_spec()
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=3)
        assert self._flat(serial) == self._flat(parallel)

    def test_results_identical_with_cache_disabled(self, monkeypatch):
        spec = sweep_spec()
        cached = run_experiment(spec, workers=1)
        clear_pack_cache()
        monkeypatch.setenv("REPRO_PACK_CACHE", "0")
        uncached = run_experiment(spec, workers=1)
        assert self._flat(cached) == self._flat(uncached)
        assert pack_cache_stats()["size"] == 0
