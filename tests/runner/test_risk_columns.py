"""The runner's objective/scenarios columns and risk-aware cells."""

import csv

from repro.runner import (
    AlgorithmSpec,
    CellResult,
    ExperimentSpec,
    run_experiment,
)
from repro.runner.results import _CSV_FIELDS
from repro.workloads import WorkloadSpec

RISK = dict(
    objective="quantile:0.75", scenarios=4, distribution="uniform:0.3"
)


def _spec(**algos) -> ExperimentSpec:
    return ExperimentSpec(
        name="risk",
        algorithms=algos,
        workloads=[WorkloadSpec(num_tasks=10, num_machines=3, seed=0)],
        seeds=(0,),
    )


def test_risk_cells_record_objective_and_scenarios(tmp_path):
    spec = _spec(
        tabu=AlgorithmSpec.make("tabu", max_iterations=3, **RISK),
        rnd=AlgorithmSpec.make("random", samples=8, **RISK),
        heft=AlgorithmSpec.make("heft"),
    )
    result = run_experiment(spec, cache_dir=tmp_path)
    by_algo = {c.algorithm: c for c in result}
    for name in ("tabu", "rnd"):
        cell = by_algo[name]
        assert cell.objective == "quantile:0.75"
        assert cell.scenarios == 4
    # deterministic cells keep the defaults
    assert by_algo["heft"].objective == "makespan"
    assert by_algo["heft"].scenarios == 0

    # cache round-trip preserves the columns
    again = run_experiment(spec, cache_dir=tmp_path)
    for fresh, cached in zip(result, again):
        assert fresh.objective == cached.objective
        assert fresh.scenarios == cached.scenarios


def test_risk_cells_are_deterministic_across_worker_counts(tmp_path):
    spec = _spec(se=AlgorithmSpec.make("se", max_iterations=3, **RISK))
    a = run_experiment(spec)
    b = run_experiment(spec, workers=2)  # single pending cell runs inline
    assert a.cells[0].makespan == b.cells[0].makespan


def test_csv_includes_the_risk_columns(tmp_path):
    assert "objective" in _CSV_FIELDS and "scenarios" in _CSV_FIELDS
    spec = _spec(tabu=AlgorithmSpec.make("tabu", max_iterations=2, **RISK))
    out = run_experiment(spec).save_csv(tmp_path / "cells.csv")
    with out.open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["objective"] == "quantile:0.75"
    assert rows[0]["scenarios"] == "4"


def test_pre_risk_cell_dicts_still_load():
    """Cache entries written before the risk axis existed deserialise."""
    doc = dict(
        cell_id="c",
        algorithm="se",
        workload="w",
        connectivity="low",
        heterogeneity="low",
        ccr=1.0,
        num_tasks=5,
        num_machines=2,
        seed=0,
        makespan=10.0,
        normalized=1.0,
    )
    cell = CellResult.from_dict(doc)
    assert cell.objective == "makespan"
    assert cell.scenarios == 0
