"""Tests for the experiment runner: caching/resume, determinism,
worker-count invariance, persistence, and progress reporting."""

import json
from pathlib import Path

import pytest

from repro.runner import (
    AlgorithmSpec,
    CellOutcome,
    ExperimentResult,
    ExperimentSpec,
    available_algorithms,
    register_algorithm,
    resolve_algorithm,
    run_cell,
    run_experiment,
)
from repro.workloads import WorkloadSpec


def tiny_spec(seeds=(0,), iters=8, name="exp"):
    return ExperimentSpec(
        name=name,
        algorithms={
            "SE": AlgorithmSpec.make("se", max_iterations=iters),
            "HEFT": AlgorithmSpec.make("heft"),
        },
        workloads=[
            WorkloadSpec(num_tasks=12, num_machines=3, seed=s, name=f"w{s}")
            for s in (1, 2)
        ],
        seeds=seeds,
    )


class TestRegistry:
    def test_builtins_present(self):
        assert {"se", "ga", "heft", "minmin", "maxmin", "olb", "random"} <= (
            set(available_algorithms())
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="available"):
            resolve_algorithm("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("se")(lambda w, s, p: CellOutcome(1.0))


class TestRunExperiment:
    def test_results_in_canonical_cell_order(self):
        result = run_experiment(tiny_spec())
        ids = [c.cell_id for c in result]
        assert ids == [c.cell_id() for c in tiny_spec().cells()]

    def test_worker_count_does_not_change_results(self):
        spec = tiny_spec(seeds=(0, 1))
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=4)
        assert [(c.cell_id, c.makespan) for c in serial] == (
            [(c.cell_id, c.makespan) for c in parallel]
        )

    def test_rerun_is_deterministic(self):
        a = run_experiment(tiny_spec())
        b = run_experiment(tiny_spec())
        assert [(c.cell_id, c.makespan, c.seed) for c in a] == (
            [(c.cell_id, c.makespan, c.seed) for c in b]
        )

    def test_traces_kept_and_stripped(self):
        spec = tiny_spec()
        with_traces = run_experiment(spec, keep_traces=True)
        se_cell = with_traces.by_algorithm("SE")[0]
        assert len(se_cell.convergence_trace()) > 0
        heft_cell = with_traces.by_algorithm("HEFT")[0]
        assert heft_cell.trace is None  # deterministic: no trace at all
        stripped = run_experiment(spec, keep_traces=False)
        assert all(c.trace is None for c in stripped)

    def test_run_cell_records_classification(self):
        cell = tiny_spec().cells()[0]
        res = run_cell(cell)
        assert res.num_tasks == 12 and res.num_machines == 3
        assert res.connectivity and res.heterogeneity
        assert res.normalized >= 1.0 or res.normalized > 0


class TestCacheResume:
    def test_cache_files_written_and_reused(self, tmp_path):
        spec = tiny_spec()
        calls = []
        first = run_experiment(
            spec,
            cache_dir=tmp_path,
            progress=lambda d, t, c, cached: calls.append(cached),
        )
        assert calls and not any(calls)  # everything computed
        assert len(list(tmp_path.glob("*.json"))) == len(spec.cells())

        calls.clear()
        second = run_experiment(
            spec,
            cache_dir=tmp_path,
            progress=lambda d, t, c, cached: calls.append(cached),
        )
        assert calls and all(calls)  # everything from cache
        assert [(c.cell_id, c.makespan) for c in first] == (
            [(c.cell_id, c.makespan) for c in second]
        )

    def test_partial_cache_runs_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        run_experiment(spec, cache_dir=tmp_path)
        # drop one cache entry -> exactly one cell re-runs
        victims = sorted(tmp_path.glob("SE__w1__s0.*.json"))
        assert victims
        victims[0].unlink()
        fresh = []
        run_experiment(
            spec,
            cache_dir=tmp_path,
            progress=lambda d, t, c, cached: fresh.append(c.cell_id)
            if not cached
            else None,
        )
        assert fresh == ["SE__w1__s0"]

    def test_changed_params_invalidate_cache(self, tmp_path):
        run_experiment(tiny_spec(iters=5), cache_dir=tmp_path)
        before = len(list(tmp_path.glob("*.json")))
        computed = []
        run_experiment(
            tiny_spec(iters=6),
            cache_dir=tmp_path,
            progress=lambda d, t, c, cached: computed.append(cached),
        )
        # HEFT cells unchanged -> cached; SE cells changed -> re-run
        assert len(list(tmp_path.glob("*.json"))) > before
        assert any(computed) and not all(computed)

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = tiny_spec()
        run_experiment(spec, cache_dir=tmp_path)
        victim = sorted(tmp_path.glob("*.json"))[0]
        victim.write_text("{not json")
        result = run_experiment(spec, cache_dir=tmp_path)
        assert len(result) == len(spec.cells())

    def test_trace_and_plain_caches_are_separate(self, tmp_path):
        spec = tiny_spec()
        run_experiment(spec, cache_dir=tmp_path, keep_traces=False)
        result = run_experiment(spec, cache_dir=tmp_path, keep_traces=True)
        # the with-traces run must not be served stripped results
        assert len(result.by_algorithm("SE")[0].convergence_trace()) > 0


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        result = run_experiment(tiny_spec())
        path = result.save_json(tmp_path / "r.json")
        back = ExperimentResult.load_json(path)
        assert [(c.cell_id, c.makespan) for c in back] == (
            [(c.cell_id, c.makespan) for c in result]
        )

    def test_csv_has_one_row_per_cell(self, tmp_path):
        result = run_experiment(tiny_spec())
        path = result.save_csv(tmp_path / "r.csv")
        lines = Path(path).read_text().strip().splitlines()
        assert len(lines) == len(result) + 1  # header + cells
        assert lines[0].startswith("cell_id,algorithm,workload")

    def test_version_guard(self, tmp_path):
        doc = run_experiment(tiny_spec()).to_dict()
        doc["version"] = 999
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            ExperimentResult.load_json(p)


class TestProgress:
    def test_progress_counts_monotonically(self):
        seen = []
        run_experiment(
            tiny_spec(),
            progress=lambda done, total, cell, cached: seen.append(
                (done, total)
            ),
        )
        total = len(tiny_spec().cells())
        assert seen == [(i + 1, total) for i in range(total)]


class TestEffectiveSeed:
    def test_pinned_params_seed_is_recorded(self):
        spec = ExperimentSpec(
            name="pinned",
            algorithms={
                "SE": AlgorithmSpec.make("se", max_iterations=3, seed=33)
            },
            workloads=[
                WorkloadSpec(num_tasks=8, num_machines=2, seed=1, name="w")
            ],
        )
        cell = run_cell(spec.cells()[0])
        assert cell.seed == 33  # the seed actually used, not the derived one
