"""Bit-determinism of incumbent injection, pinned by committed goldens.

Each cell pre-loads a :class:`LocalChannel` with a *known foreign
incumbent* — the HEFT schedule of the same workload/backend — and runs
one engine island against it with a fixed seed and a tight poll
interval.  The engine must adopt the incumbent mid-run (``received >=
1``) and finish on exactly the golden best string, makespan, iteration
and evaluation counts — on both the ``contention-free`` and ``nic``
backends.  Injection replaces the working solution without consuming
RNG draws, so a fixed seed pins the whole trajectory.

A second golden pins a full four-engine *lockstep* race
(``sync_every``): every exchange in that mode is a pure function of
seeds and iteration numbers, so everything but wall-clock time must
reproduce bit for bit.

Regenerate after an intentional engine/exchange change with::

    PYTHONPATH=src python tests/portfolio/test_injection_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.baselines import heft
from repro.portfolio import (
    EXTERNAL_SOURCE,
    LocalChannel,
    RaceConfig,
    build_islands,
    run_island,
    run_race,
)
from repro.workloads import small_workload

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_portfolio.json"

NETWORKS = ("contention-free", "nic")

#: (kind, iteration cap, poll interval) — SA iterations are single
#: proposals, so its cap and stride are coarser than the sweep engines'.
INJECTION_CELLS = (
    ("se", 8, 1),
    ("ga", 6, 2),
    ("sa", 400, 50),
    ("tabu", 8, 2),
)

SEED = 3

LOCKSTEP_CFG = dict(
    engines=("se", "ga", "sa", "tabu"),
    islands=4,
    deadline=None,
    max_iterations=6,
    sync_every=2,
    seed=11,
)


def workload():
    return small_workload(seed=3)


def run_injection_cell(kind: str, network: str) -> dict:
    w = workload()
    cap, interval = next(
        (cap, iv) for k, cap, iv in INJECTION_CELLS if k == kind
    )
    seeded = heft(w, network=network)
    channel = LocalChannel()
    channel.publish(
        EXTERNAL_SOURCE,
        seeded.makespan,
        seeded.string.order,
        seeded.string.machines,
    )
    (spec,) = build_islands(
        (kind,), 1, SEED, None, cap, network, "uniform", interval=interval
    )
    out = run_island(spec, w, channel)
    return {
        "incumbent_cost": seeded.makespan,
        "best_makespan": out.best_makespan,
        "best_string": out.best_string,
        "iterations": out.iterations,
        "evaluations": out.evaluations,
        "published": out.published,
        "received": out.received,
    }


def run_lockstep_cell(network: str) -> dict:
    res = run_race(workload(), RaceConfig(network=network, **LOCKSTEP_CFG))
    return {
        "best_makespan": res.best_makespan,
        "best_island": res.best_island,
        "best_kind": res.best_kind,
        "best_string": res.best_string,
        "islands": [
            {
                "kind": o.kind,
                "best_makespan": o.best_makespan,
                "iterations": o.iterations,
                "evaluations": o.evaluations,
                "published": o.published,
                "received": o.received,
                "anytime_costs": [cost for _, cost in o.anytime],
            }
            for o in res.islands
        ],
    }


def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("kind", [c[0] for c in INJECTION_CELLS])
class TestInjectionBitDeterminism:
    def test_matches_golden(self, kind, network):
        g = golden()["injection"][f"{kind}|{network}"]
        assert run_injection_cell(kind, network) == g

    def test_golden_recorded_an_adoption(self, kind, network):
        # the committed cells are only meaningful if the engine actually
        # swallowed the foreign incumbent and never did worse than it
        g = golden()["injection"][f"{kind}|{network}"]
        assert g["received"] >= 1
        assert g["best_makespan"] <= g["incumbent_cost"]


@pytest.mark.parametrize("network", NETWORKS)
class TestLockstepRaceGolden:
    def test_matches_golden(self, network):
        assert run_lockstep_cell(network) == golden()["lockstep"][network]


def generate() -> None:
    doc = {
        "injection": {
            f"{kind}|{network}": run_injection_cell(kind, network)
            for kind, _, _ in INJECTION_CELLS
            for network in NETWORKS
        },
        "lockstep": {
            network: run_lockstep_cell(network) for network in NETWORKS
        },
    }
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for key, cell in doc["injection"].items():
        print(
            f"  {key:<22} best {cell['best_makespan']:.2f} "
            f"(incumbent {cell['incumbent_cost']:.2f}) "
            f"recv {cell['received']}"
        )


if __name__ == "__main__":
    generate()
