"""Driver-level tests: config validation, execution modes, solo identity.

The ``islands=1`` cells re-check the race against
``tests/data/golden_engines.json`` — the acceptance criterion that a
single-island race is bit-identical to the engine's solo golden run
(same seed, no channel, no exchange overhead in the RNG stream).
"""

import json
from pathlib import Path

import pytest

from repro.optim import SAConfig, SimulatedAnnealing
from repro.portfolio import (
    IslandOutcome,
    RaceConfig,
    RaceResult,
    run_race,
)
from repro.workloads import WorkloadSpec, build_workload, small_workload

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_engines.json"

WORKLOADS = {
    "small-s3": lambda: small_workload(seed=3),
    "spec-12x3": lambda: build_workload(
        WorkloadSpec(num_tasks=12, num_machines=3, seed=5, name="g1")
    ),
}


def golden_cells():
    doc = json.loads(GOLDEN_PATH.read_text())
    return sorted(doc.items())


def parse_key(key):
    wname, network, s = key.split("|")
    return WORKLOADS[wname](), network, int(s[1:])


class TestRaceConfig:
    def test_engines_string_is_split(self):
        cfg = RaceConfig(engines="se, tabu", max_iterations=2)
        assert cfg.engines == ("se", "tabu")

    def test_islands_zero_means_one_per_engine(self):
        cfg = RaceConfig(engines=("se", "ga", "sa"), max_iterations=2)
        assert cfg.islands == 3

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(engines=("se", "heft")), "unknown engine kind"),
            (dict(engines=""), "at least one"),
            (dict(islands=-1), "islands"),
            (dict(mode="greenlet"), "mode"),
            (dict(sync_every=0, max_iterations=4), "sync_every"),
            (dict(sync_every=2), "requires max_iterations"),
            (dict(deadline=None), "deadline, max_iterations"),
            (dict(deadline=0.0), "deadline"),
            (dict(max_iterations=0), "max_iterations"),
            (dict(exchange_interval=0, max_iterations=2), "exchange_interval"),
            (dict(network=""), "network"),
            (dict(platform="no-such-platform"), "platform"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RaceConfig(**kwargs)


@pytest.mark.parametrize("key,expected", golden_cells())
class TestSoloRaceBitIdentity:
    """``islands=1`` must replay the engine's solo golden trajectory."""

    def race(self, kind, workload, network, seed, iterations, **params):
        cfg = RaceConfig(
            engines=(kind,),
            islands=1,
            deadline=None,
            max_iterations=iterations,
            network=network,
            seed=seed,
        )
        return run_race(
            workload, cfg, engine_params={kind: params} if params else None
        )

    def assert_matches(self, res, g, iterations_key="iterations"):
        (island,) = res.islands
        assert res.best_makespan == g["best_makespan"]
        assert res.best_string["order"] == g["best_string"]["order"]
        assert res.best_string["machines"] == g["best_string"]["machines"]
        assert island.iterations == g[iterations_key]
        assert island.evaluations == g["evaluations"]

    def test_se(self, key, expected):
        w, network, seed = parse_key(key)
        res = self.race("se", w, network, seed, iterations=8)
        self.assert_matches(res, expected["se"])

    def test_ga(self, key, expected):
        w, network, seed = parse_key(key)
        res = self.race(
            "ga", w, network, seed, iterations=6, population_size=8
        )
        self.assert_matches(res, expected["ga"], iterations_key="generations")

    def test_tabu(self, key, expected):
        w, network, seed = parse_key(key)
        res = self.race("tabu", w, network, seed, iterations=8)
        self.assert_matches(res, expected["tabu"])


class TestSoloRaceSA:
    """SA has no pre-portfolio golden; pin solo identity against the
    engine API directly (same seed, same config fields the race sets)."""

    def test_matches_direct_engine_run(self):
        w = small_workload(seed=3)
        res = run_race(
            w,
            RaceConfig(
                engines=("sa",),
                islands=1,
                deadline=None,
                max_iterations=300,
                seed=7,
            ),
        )
        solo = SimulatedAnnealing(
            SAConfig(
                seed=7,
                max_iterations=300,
                stall_iterations=None,
                record_every=100,
                network="contention-free",
            )
        ).run(w)
        assert res.best_makespan == solo.best_makespan
        assert res.best_string["order"] == list(solo.best_string.order)
        assert res.best_string["machines"] == list(solo.best_string.machines)
        assert res.islands[0].evaluations == solo.evaluations


def strip_wallclock(res: RaceResult) -> dict:
    """The race summary minus every wall-clock-dependent field."""
    doc = res.to_dict()
    doc.pop("wall_seconds")
    doc.pop("combined_anytime")
    for island in doc["islands"]:
        island["anytime"] = [cost for _, cost in island["anytime"]]
    return doc


class TestLockstepDeterminism:
    CFG = dict(
        engines=("se", "ga", "sa", "tabu"),
        islands=4,
        deadline=None,
        max_iterations=6,
        sync_every=2,
        seed=11,
    )

    def test_repeat_runs_identical_modulo_wallclock(self):
        w = small_workload(seed=3)
        a = run_race(w, RaceConfig(**self.CFG))
        b = run_race(w, RaceConfig(**self.CFG))
        assert strip_wallclock(a) == strip_wallclock(b)

    def test_exchange_actually_happened(self):
        res = run_race(small_workload(seed=3), RaceConfig(**self.CFG))
        assert sum(o.published for o in res.islands) >= 1
        assert res.best_makespan == min(
            o.best_makespan for o in res.islands
        )


class TestThreadMode:
    def test_race_runs_and_picks_min(self):
        res = run_race(
            small_workload(seed=3),
            RaceConfig(
                engines=("se", "tabu"),
                islands=2,
                deadline=None,
                max_iterations=4,
                mode="thread",
                seed=2,
            ),
        )
        assert len(res.islands) == 2
        assert res.best_makespan == min(o.best_makespan for o in res.islands)
        assert res.best_kind == res.islands[res.best_island].kind
        assert res.workload == "small-medium"

    def test_workload_spec_is_built(self):
        res = run_race(
            WorkloadSpec(num_tasks=10, num_machines=2, seed=4, name="spec-w"),
            RaceConfig(
                engines=("tabu",),
                islands=2,
                deadline=None,
                max_iterations=3,
                mode="thread",
                seed=5,
            ),
        )
        assert res.workload == "spec-w"


class TestProcessMode:
    def test_cross_process_race(self):
        res = run_race(
            small_workload(seed=3),
            RaceConfig(
                engines=("se", "tabu"),
                islands=2,
                deadline=None,
                max_iterations=4,
                mode="process",
                workers=2,
                seed=2,
            ),
        )
        assert len(res.islands) == 2
        assert res.best_makespan == min(o.best_makespan for o in res.islands)
        assert all(o.start_offset >= 0 for o in res.islands)


def make_island(island, kind, best, anytime, offset=0.0):
    return IslandOutcome(
        island=island,
        kind=kind,
        seed=island,
        best_makespan=best,
        best_string={"order": [0], "machines": [0]},
        iterations=3,
        evaluations=10,
        stopped_by="max_iterations",
        kernel_tier="vectorized",
        published=1,
        received=0,
        start_offset=offset,
        runtime_seconds=1.0,
        anytime=anytime,
    )


class TestRaceResult:
    def result(self):
        islands = (
            make_island(0, "se", 50.0, [(0.1, 80.0), (0.5, 50.0)]),
            make_island(1, "tabu", 60.0, [(0.2, 60.0)], offset=1.0),
        )
        return RaceResult(
            workload="w",
            islands=islands,
            best_makespan=50.0,
            best_string=islands[0].best_string,
            best_island=0,
            wall_seconds=2.0,
        )

    def test_combined_anytime_shifts_and_filters(self):
        # island 1 starts at +1.0s, so its 60.0 lands at t=1.2 — after
        # island 0 already reached 50.0: not a global improvement
        assert self.result().combined_anytime() == [
            (0.1, 80.0),
            (0.5, 50.0),
        ]

    def test_aggregates(self):
        res = self.result()
        assert res.best_kind == "se"
        assert res.evaluations == 20
        assert res.iterations == 6

    def test_to_dict_is_json_safe(self):
        doc = self.result().to_dict()
        roundtrip = json.loads(json.dumps(doc))
        assert roundtrip["best_kind"] == "se"
        assert len(roundtrip["islands"]) == 2


class TestRunnerRegistryEntry:
    def test_portfolio_cell_outcome(self):
        from repro.runner.registry import resolve_algorithm

        fn = resolve_algorithm("portfolio")
        out = fn(
            small_workload(seed=3),
            3,
            {
                "engines": "se,tabu",
                "islands": 2,
                "deadline": None,
                "max_iterations": 3,
            },
        )
        assert out.makespan > 0
        assert out.extras["best_kind"] in ("se", "tabu")
        assert len(out.extras["islands"]) == 2
        assert out.stopped_by

    def test_portfolio_listed_with_params(self):
        from repro.runner.registry import (
            algorithm_parameters,
            available_algorithms,
        )

        assert "portfolio" in available_algorithms()
        params = algorithm_parameters("portfolio")
        assert "engines" in params and "sync_every" in params
