"""Unit tests for the incumbent channels and the exchange endpoint."""

import threading
from types import SimpleNamespace

import pytest

from repro.analysis.trace import IterationRecord
from repro.optim import Incumbent, IncumbentSource
from repro.portfolio import (
    EXTERNAL_SOURCE,
    IncumbentExchange,
    LocalChannel,
    SharedChannel,
    SyncChannel,
)


def string(order=(0, 1, 2), machines=(0, 1, 0)):
    return SimpleNamespace(order=tuple(order), machines=tuple(machines))


def record(iteration, current, best):
    return IterationRecord(
        iteration=iteration,
        current_makespan=current,
        best_makespan=best,
        num_selected=None,
        elapsed_seconds=0.0,
        mean_goodness=None,
        evaluations=iteration,
    )


class TestLocalChannel:
    def test_empty_channel(self):
        ch = LocalChannel()
        assert ch.best() is None
        assert ch.peek(0) is None

    def test_publish_installs_versioned_incumbent(self):
        ch = LocalChannel()
        assert ch.publish(0, 10.0, (0, 1), (1, 0))
        inc = ch.best()
        assert inc == Incumbent(1, 10.0, (0, 1), (1, 0), 0)

    def test_publish_requires_strict_improvement(self):
        ch = LocalChannel()
        ch.publish(0, 10.0, (0, 1), (1, 0))
        assert not ch.publish(1, 10.0, (1, 0), (0, 1))  # tie loses
        assert not ch.publish(1, 11.0, (1, 0), (0, 1))  # worse loses
        assert ch.best().source == 0
        assert ch.publish(1, 9.0, (1, 0), (0, 1))
        assert ch.best() == Incumbent(2, 9.0, (1, 0), (0, 1), 1)

    def test_peek_hides_already_seen_versions(self):
        ch = LocalChannel()
        ch.publish(0, 10.0, (0,), (0,))
        inc = ch.peek(0)
        assert inc.version == 1
        assert ch.peek(inc.version) is None
        ch.publish(1, 5.0, (0,), (1,))
        assert ch.peek(inc.version).version == 2

    def test_checkpoint_and_leave_are_noops(self):
        ch = LocalChannel()
        ch.checkpoint(0)
        ch.leave(0)
        assert ch.best() is None


class TestSharedChannel:
    """The CAS logic over plain stand-ins (the manager proxies only add
    IPC; driver process-mode tests cover the real proxy path)."""

    def make(self):
        return SharedChannel({}, threading.Lock())

    def test_publish_peek_roundtrip(self):
        ch = self.make()
        assert ch.publish(2, 7.5, (0, 1), (0, 0))
        assert ch.best() == Incumbent(1, 7.5, (0, 1), (0, 0), 2)
        assert ch.peek(0) == ch.best()
        assert ch.peek(1) is None

    def test_strict_improvement_cas(self):
        ch = self.make()
        ch.publish(0, 10.0, (0,), (0,))
        assert not ch.publish(1, 10.0, (0,), (1,))
        assert ch.publish(1, 1.0, (0,), (1,))
        assert ch.best().version == 2
        assert ch.best().source == 1


class TestSyncChannel:
    def test_needs_at_least_one_island(self):
        with pytest.raises(ValueError, match="islands"):
            SyncChannel(0)

    def test_publication_invisible_until_rendezvous(self):
        # island 1 publishes mid-stretch; island 0 leaves for good.  The
        # merge must NOT consume island 1's buffer while it is still
        # running — only its own checkpoint releases it.
        ch = SyncChannel(2)
        ch.publish(1, 5.0, (0,), (0,))
        ch.leave(0)
        assert ch.best() is None
        ch.checkpoint(1)  # quorum of one: merges inline
        assert ch.best() == Incumbent(1, 5.0, (0,), (0,), 1)

    def test_merge_orders_by_cost_then_island(self):
        ch = SyncChannel(2)
        ch.publish(0, 5.0, (0,), (0,))
        ch.publish(1, 5.0, (1,), (1,))  # cost tie: lowest island id wins
        ch.leave(0)
        ch.checkpoint(1)
        best = ch.best()
        assert (best.cost, best.source, best.version) == (5.0, 0, 1)

    def test_merge_installs_only_global_improvements(self):
        ch = SyncChannel(2)
        ch.publish(0, 3.0, (0,), (0,))
        ch.publish(1, 9.0, (1,), (1,))
        ch.leave(0)
        ch.checkpoint(1)
        # island 1's 9.0 merged after 3.0 and must not bump the version
        assert ch.best() == Incumbent(1, 3.0, (0,), (0,), 0)

    def test_external_incumbent_joins_first_merge(self):
        ch = SyncChannel(1)
        ch.publish(EXTERNAL_SOURCE, 2.0, (0, 1), (1, 1))
        ch.checkpoint(0)
        assert ch.best().source == EXTERNAL_SOURCE

    def test_pending_keeps_per_island_best(self):
        ch = SyncChannel(1)
        assert ch.publish(0, 9.0, (0,), (0,))
        assert not ch.publish(0, 9.5, (1,), (1,))  # worse than own buffer
        assert ch.publish(0, 4.0, (2,), (2,))
        ch.checkpoint(0)
        assert ch.best().cost == 4.0

    def test_final_leave_flushes_everything(self):
        ch = SyncChannel(2)
        ch.publish(0, 8.0, (0,), (0,))
        ch.publish(1, 6.0, (1,), (1,))
        ch.leave(0)
        ch.leave(1)  # nobody left waiting: final flush merges both
        assert ch.best().cost == 6.0

    def test_rendezvous_releases_waiting_threads(self):
        ch = SyncChannel(2)
        seen = []

        def island(i):
            ch.publish(i, float(10 - i), (i,), (i,))
            ch.checkpoint(i)
            seen.append(ch.peek(0))
            ch.leave(i)

        threads = [
            threading.Thread(target=island, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        # after the round both islands see the merged global best (9.0)
        assert [inc.cost for inc in seen] == [9.0, 9.0]


class TestIncumbentExchange:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            IncumbentExchange(LocalChannel(), 0, interval=0)

    def test_satisfies_incumbent_source_protocol(self):
        assert isinstance(
            IncumbentExchange(LocalChannel(), 0), IncumbentSource
        )

    def test_publishes_only_new_global_bests(self):
        ch = LocalChannel()
        ex = IncumbentExchange(ch, island=0, interval=1)
        ex(record(1, current=10.0, best=10.0), string())
        assert (ex.published, ch.best().cost) == (1, 10.0)
        # same best again: not a new global best, nothing published
        ex(record(2, current=10.0, best=10.0), string())
        assert ex.published == 1
        # best improved but the *current* record is not the best holder
        ex(record(3, current=12.0, best=9.0), string())
        assert ex.published == 1
        ex(record(4, current=8.0, best=8.0), string((1, 0, 2)))
        assert (ex.published, ch.best().cost) == (2, 8.0)

    def test_incoming_throttled_to_interval(self):
        class Counting(LocalChannel):
            polls = 0

            def peek(self, last_version):
                Counting.polls += 1
                return super().peek(last_version)

        ch = Counting()
        ex = IncumbentExchange(ch, island=0, interval=5)
        for it in range(1, 11):
            ex.incoming(it, 100.0)
        assert Counting.polls == 2  # iterations 5 and 10 only

    def test_incoming_skips_own_and_non_improving(self):
        ch = LocalChannel()
        ex = IncumbentExchange(ch, island=0, interval=1)
        ch.publish(0, 5.0, (0,), (0,))
        assert ex.incoming(1, 100.0) is None  # own publication
        ch.publish(1, 4.0, (1,), (1,))
        assert ex.incoming(2, 4.0) is None  # not strictly better
        assert ex.received == 0

    def test_incoming_adopts_improving_foreign_incumbent(self):
        ch = LocalChannel()
        ex = IncumbentExchange(ch, island=0, interval=1)
        ch.publish(EXTERNAL_SOURCE, 5.0, (1, 0), (0, 1))
        inc = ex.incoming(1, 100.0)
        assert inc == Incumbent(1, 5.0, (1, 0), (0, 1), EXTERNAL_SOURCE)
        assert ex.received == 1
        # the same version is never delivered twice
        assert ex.incoming(2, 100.0) is None

    def test_adopted_incumbent_is_not_republished(self):
        ch = LocalChannel()
        ex = IncumbentExchange(ch, island=0, interval=1)
        ch.publish(EXTERNAL_SOURCE, 5.0, (1, 0), (0, 1))
        assert ex.incoming(1, 100.0) is not None
        # the engine now reports the adopted cost as its best: equal to
        # what the channel holds, so publishing it back would be noise
        ex(record(2, current=5.0, best=5.0), string((1, 0)))
        assert ex.published == 0

    def test_finish_leaves_channel(self):
        calls = []

        class Spy(LocalChannel):
            def leave(self, island):
                calls.append(island)

        IncumbentExchange(Spy(), island=3).finish()
        assert calls == [3]
