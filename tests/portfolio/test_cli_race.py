"""End-to-end tests of the ``repro race`` command."""

import json

import pytest

from repro.cli import main


class TestRace:
    def test_lockstep_race_prints_table(self, capsys):
        rc = main(
            ["race", "--preset", "small", "--seed", "1",
             "--engines", "se,tabu", "--iterations", "4",
             "--sync-every", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "racing 2 islands (se,tabu)" in out
        assert "lockstep mode" in out
        assert "4 iterations" in out  # deadline dropped for lockstep
        assert "island" in out and "race" in out

    def test_deadline_zero_is_iteration_capped(self, capsys):
        rc = main(
            ["race", "--preset", "small", "--seed", "1",
             "--engines", "tabu", "--islands", "2", "--deadline", "0",
             "--iterations", "3", "--mode", "thread"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 iterations" in out
        assert "thread mode" in out

    def test_verbose_reports_kernel_tier_per_island(self, capsys):
        rc = main(
            ["race", "--preset", "small", "--seed", "1",
             "--engines", "se,tabu", "--iterations", "3",
             "--sync-every", "3", "--verbose"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        tier_lines = [
            ln for ln in out.splitlines() if "kernel tier" in ln
        ]
        assert len(tier_lines) == 2
        assert all("island" in ln for ln in tier_lines)
        assert "combined anytime curve" in out

    def test_output_writes_race_summary_json(self, tmp_path, capsys):
        out_path = tmp_path / "race.json"
        rc = main(
            ["race", "--preset", "small", "--seed", "1",
             "--engines", "se,tabu", "--iterations", "3",
             "--sync-every", "3", "--output", str(out_path)]
        )
        assert rc == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["best_kind"] in ("se", "tabu")
        assert len(doc["islands"]) == 2
        assert doc["best_makespan"] == min(
            o["best_makespan"] for o in doc["islands"]
        )

    def test_nic_network_race(self, capsys):
        rc = main(
            ["race", "--preset", "small", "--seed", "2",
             "--engines", "tabu", "--islands", "2", "--deadline", "0",
             "--iterations", "3", "--mode", "thread", "--network", "nic"]
        )
        assert rc == 0

    def test_bad_engine_exits_with_message(self):
        with pytest.raises(SystemExit, match="race: unknown engine kind"):
            main(
                ["race", "--preset", "small", "--engines", "se,alien",
                 "--iterations", "2"]
            )

    def test_sync_without_iterations_exits(self):
        with pytest.raises(SystemExit, match="requires max_iterations"):
            main(
                ["race", "--preset", "small", "--sync-every", "2"]
            )

    def test_unknown_platform_exits(self):
        with pytest.raises(SystemExit, match="platform"):
            main(
                ["race", "--preset", "small", "--iterations", "2",
                 "--platform", "no-such-platform"]
            )


class TestAlgorithmsListing:
    def test_portfolio_listed_with_race_params(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        line = next(
            ln for ln in out.splitlines() if ln.strip().startswith("portfolio")
        )
        for param in ("engines", "islands", "deadline", "sync_every", "mode"):
            assert param in line


class TestSweepPortfolio:
    """Sweep cells with the portfolio entry are worker-count invariant.

    ``repro sweep`` maps an iteration-capped portfolio onto the
    deterministic lockstep race (``sync_every``, no wall-clock
    deadline), so cells reproduce bit-exactly regardless of the pool
    width — the same contract every other engine honours.
    """

    def sweep(self, tmp_path, tag, workers):
        rc = main(
            [
                "sweep",
                "--name", tag,
                "--algos", "portfolio",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--iterations", "6",
                "--seeds", "1",
                "--workers", str(workers),
                "--quiet",
                "--out", str(tmp_path),
                "--cache", str(tmp_path / f"cache-{tag}"),
            ]
        )
        assert rc == 0
        doc = json.loads((tmp_path / f"{tag}.json").read_text())
        return [
            {k: c[k] for k in ("makespan", "evaluations", "iterations")}
            for c in doc["cells"]
        ]

    def test_worker_count_invariant(self, tmp_path, capsys):
        two = self.sweep(tmp_path, "w2", workers=2)
        one = self.sweep(tmp_path, "w1", workers=1)
        assert two == one
        assert all(c["iterations"] > 0 for c in one)
