"""Unit tests for island specs, race defaults, and run_island."""

import pytest

from repro.portfolio import (
    DEFAULT_INTERVALS,
    ENGINE_KINDS,
    LocalChannel,
    build_islands,
    run_island,
)
from repro.portfolio.islands import UNBOUNDED, engine_defaults
from repro.runner.spec import derive_seed
from repro.workloads import small_workload


class TestEngineDefaults:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown engine kind"):
            engine_defaults("heft", 1.0, None, "contention-free", "uniform")

    def test_deadline_run_is_unbounded_and_stall_free(self):
        p = engine_defaults("se", 2.0, None, "nic", "uniform")
        assert p["max_iterations"] == UNBOUNDED
        assert p["time_limit"] == 2.0
        assert p["stall_iterations"] is None
        assert p["network"] == "nic"

    def test_ga_cap_field_is_generations(self):
        p = engine_defaults("ga", None, 6, "contention-free", "uniform")
        assert p["max_generations"] == 6
        assert "max_iterations" not in p
        assert p["stall_generations"] is None
        assert "time_limit" not in p

    def test_sa_gets_coarse_trace_stride(self):
        p = engine_defaults("sa", 1.0, None, "contention-free", "uniform")
        assert p["record_every"] == 100
        assert p["stall_iterations"] is None


class TestBuildIslands:
    def build(self, **kw):
        args = dict(
            engines=ENGINE_KINDS,
            islands=6,
            base_seed=9,
            deadline=None,
            max_iterations=4,
            network="contention-free",
            platform="uniform",
        )
        args.update(kw)
        return build_islands(**args)

    def test_validation(self):
        with pytest.raises(ValueError, match="islands"):
            self.build(islands=0)
        with pytest.raises(ValueError, match="engines"):
            self.build(engines=())

    def test_kinds_cycle_then_restart(self):
        specs = self.build()
        assert [s.kind for s in specs] == [
            "se", "ga", "sa", "tabu", "se", "ga",
        ]
        assert [s.island for s in specs] == list(range(6))

    def test_seeds_derive_per_island(self):
        specs = self.build()
        assert [s.seed for s in specs] == [
            derive_seed(9, "island", i, s.kind)
            for i, s in enumerate(specs)
        ]
        # restarts of the same kind get distinct streams
        assert specs[0].seed != specs[4].seed

    def test_single_island_keeps_base_seed(self):
        (spec,) = self.build(engines=("tabu",), islands=1)
        assert spec.seed == 9  # the --islands 1 bit-identity contract

    def test_intervals_default_per_kind(self):
        specs = self.build()
        assert [s.interval for s in specs[:4]] == [
            DEFAULT_INTERVALS[k] for k in ENGINE_KINDS
        ]

    def test_interval_override_applies_to_all(self):
        specs = self.build(interval=3)
        assert {s.interval for s in specs} == {3}

    def test_engine_params_override_race_defaults(self):
        specs = self.build(
            engine_params={"ga": {"population_size": 8}, "se": {"bias": 0.1}}
        )
        assert specs[1].params["population_size"] == 8
        assert specs[0].params["bias"] == 0.1
        assert "population_size" not in specs[0].params


class TestRunIsland:
    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_each_kind_runs_solo(self, kind):
        iters = 200 if kind == "sa" else 4
        (spec,) = build_islands(
            (kind,), 1, 3, None, iters, "contention-free", "uniform"
        )
        out = run_island(spec, small_workload(seed=3))
        assert out.kind == kind
        assert out.best_makespan > 0
        assert out.evaluations > 0
        assert out.published == out.received == 0  # no channel attached
        assert out.kernel_tier in ("vectorized", "jit")
        # the anytime list is the strict best-so-far staircase
        costs = [c for _, c in out.anytime]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)
        assert costs and costs[-1] == out.best_makespan

    def test_channel_wires_exchange_counters(self):
        channel = LocalChannel()
        (spec,) = build_islands(
            ("tabu",), 1, 3, None, 4, "contention-free", "uniform",
            interval=1,
        )
        out = run_island(spec, small_workload(seed=3), channel)
        # the island published its improvements into the channel…
        assert out.published >= 1
        assert channel.best().cost == out.best_makespan
        # …and adopted nothing (it raced alone)
        assert out.received == 0

    def test_start_offset_measured_against_race_epoch(self):
        import time

        (spec,) = build_islands(
            ("tabu",), 1, 3, None, 2, "contention-free", "uniform"
        )
        out = run_island(
            spec, small_workload(seed=3), race_epoch=time.time() - 5.0
        )
        assert out.start_offset >= 5.0
