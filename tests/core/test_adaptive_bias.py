"""Unit tests for the adaptive-bias extension."""

import numpy as np
import pytest

from repro.core import SEConfig, run_se
from repro.core.selection import (
    bias_for_target_fraction,
    expected_selection_fraction,
)


class TestBiasForTargetFraction:
    def test_hits_target_on_spread_goodness(self):
        g = np.linspace(0.1, 0.9, 50)
        for target in (0.05, 0.2, 0.5):
            b = bias_for_target_fraction(g, target)
            assert expected_selection_fraction(g, b) == pytest.approx(
                target, abs=1e-4
            )

    def test_saturated_goodness_gets_negative_bias(self):
        """The motivating case: goodness ~0.97 with target 10% selection
        needs a clearly negative bias."""
        g = np.full(100, 0.97)
        b = bias_for_target_fraction(g, 0.10)
        assert b < 0
        assert expected_selection_fraction(g, b) == pytest.approx(0.10, abs=1e-4)

    def test_unreachable_target_clamps_low(self):
        # goodness all zero: fraction at B=-1 is 1.0; target 1.0 needs B<=-... reachable
        g = np.zeros(10)
        b = bias_for_target_fraction(g, 1.0)
        assert expected_selection_fraction(g, b) == pytest.approx(1.0, abs=1e-4)

    def test_tiny_target_clamps_high(self):
        g = np.zeros(10)
        b = bias_for_target_fraction(g, 0.001)
        # B = +1 makes fraction 0, which is the closest achievable side
        assert b <= 1.0
        assert expected_selection_fraction(g, b) <= 0.002

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            bias_for_target_fraction(np.zeros(3), 0.0)
        with pytest.raises(ValueError, match="target"):
            bias_for_target_fraction(np.zeros(3), 1.5)

    def test_monotone_in_target(self):
        g = np.linspace(0.2, 0.8, 30)
        b_small = bias_for_target_fraction(g, 0.05)
        b_large = bias_for_target_fraction(g, 0.5)
        assert b_large < b_small  # more selection needs lower bias


class TestAdaptiveEngine:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="adaptive_target"):
            SEConfig(adaptive_target=0.0)
        with pytest.raises(ValueError, match="adaptive_target"):
            SEConfig(adaptive_target=1.5)
        SEConfig(adaptive_target=0.15)  # ok

    def test_selection_fraction_held_steady(self, tiny_workload):
        """With adaptive target 25%, the mean selected fraction across
        iterations should sit near 25% — unlike fixed positive bias,
        which decays toward zero as goodness saturates."""
        res = run_se(
            tiny_workload,
            SEConfig(seed=3, max_iterations=40, adaptive_target=0.25),
        )
        sel = res.trace.selected_counts()
        mean_fraction = sum(sel) / (len(sel) * tiny_workload.num_tasks)
        assert mean_fraction == pytest.approx(0.25, abs=0.08)

    def test_fixed_positive_bias_decays_adaptive_does_not(self, tiny_workload):
        fixed = run_se(
            tiny_workload,
            SEConfig(seed=3, max_iterations=40, selection_bias=0.1),
        )
        adaptive = run_se(
            tiny_workload,
            SEConfig(seed=3, max_iterations=40, adaptive_target=0.25),
        )
        late_fixed = sum(fixed.trace.selected_counts()[-10:])
        late_adaptive = sum(adaptive.trace.selected_counts()[-10:])
        assert late_adaptive > late_fixed

    def test_deterministic(self, tiny_workload):
        cfg = SEConfig(seed=4, max_iterations=15, adaptive_target=0.2)
        a = run_se(tiny_workload, cfg)
        b = run_se(tiny_workload, cfg)
        assert a.best_makespan == b.best_makespan
        assert a.trace.selected_counts() == b.trace.selected_counts()

    def test_valid_verified_result(self, tiny_workload):
        from repro.schedule import is_valid_for, verify_schedule

        res = run_se(
            tiny_workload,
            SEConfig(seed=5, max_iterations=20, adaptive_target=0.3),
        )
        assert is_valid_for(res.best_string, tiny_workload.graph)
        verify_schedule(tiny_workload, res.best_schedule)

    def test_reported_bias_is_last_used(self, tiny_workload):
        res = run_se(
            tiny_workload,
            SEConfig(seed=5, max_iterations=10, adaptive_target=0.3),
        )
        assert -1.0 <= res.bias <= 1.0
