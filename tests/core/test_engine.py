"""Unit and behavioural tests for the SE engine."""

import pytest

from repro.analysis.trace import IterationRecord
from repro.core import SEConfig, run_se
from repro.core.observers import StallDetector, StringSnapshots
from repro.schedule import Simulator, is_valid_for, verify_schedule
from repro.schedule.operations import random_valid_string


class TestBasicRun:
    def test_returns_valid_best_string(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=30))
        assert is_valid_for(res.best_string, tiny_workload.graph)

    def test_best_schedule_verifies(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=30))
        verify_schedule(tiny_workload, res.best_schedule)

    def test_best_makespan_consistent(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=30))
        sim = Simulator(tiny_workload)
        assert res.best_makespan == pytest.approx(
            sim.string_makespan(res.best_string)
        )
        assert res.best_schedule.makespan == pytest.approx(res.best_makespan)

    def test_trace_length_equals_iterations(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=25))
        assert res.iterations == 25
        assert len(res.trace) == 25

    def test_zero_iterations(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=0))
        assert res.iterations == 0
        assert len(res.trace) == 0
        assert is_valid_for(res.best_string, tiny_workload.graph)

    def test_resolved_parameters_reported(self, tiny_workload):
        res = run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=5, y_candidates=2, selection_bias=-0.1),
        )
        assert res.y_candidates == 2
        assert res.bias == -0.1

    def test_sample_workload_improves_over_figure2(self, sample_workload):
        """SE should at least match the paper's hand-made Figure-2 string."""
        from repro.model import FIGURE2_PAIRS
        from repro.schedule import ScheduleString

        fig2 = Simulator(sample_workload).string_makespan(
            ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        )
        res = run_se(sample_workload, SEConfig(seed=5, max_iterations=60))
        assert res.best_makespan <= fig2


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_workload):
        a = run_se(tiny_workload, SEConfig(seed=42, max_iterations=20))
        b = run_se(tiny_workload, SEConfig(seed=42, max_iterations=20))
        assert a.best_makespan == b.best_makespan
        assert a.best_string == b.best_string
        assert a.trace.current_makespans() == b.trace.current_makespans()
        assert a.trace.selected_counts() == b.trace.selected_counts()

    def test_different_seeds_differ(self, tiny_workload):
        a = run_se(tiny_workload, SEConfig(seed=1, max_iterations=20))
        b = run_se(tiny_workload, SEConfig(seed=2, max_iterations=20))
        assert (
            a.trace.selected_counts() != b.trace.selected_counts()
            or a.best_string != b.best_string
        )


class TestTraceInvariants:
    def test_best_makespan_monotone_nonincreasing(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=3, max_iterations=50))
        best = res.trace.best_makespans()
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best, best[1:]))

    def test_best_is_min_of_currents(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=3, max_iterations=50))
        assert res.best_makespan <= min(res.trace.current_makespans()) + 1e-9

    def test_selected_counts_bounded_by_k(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=3, max_iterations=50))
        assert all(
            0 <= c <= tiny_workload.num_tasks
            for c in res.trace.selected_counts()
        )

    def test_mean_goodness_in_unit_interval(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=3, max_iterations=30))
        for r in res.trace.records:
            assert 0.0 <= r.mean_goodness <= 1.0

    def test_evaluations_cumulative(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=3, max_iterations=30))
        evals = [r.evaluations for r in res.trace.records]
        assert all(e2 > e1 for e1, e2 in zip(evals, evals[1:]))
        assert res.evaluations == evals[-1]


class TestStoppingCriteria:
    def test_stops_by_iterations(self, tiny_workload):
        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=10))
        assert res.stopped_by == "iterations"

    def test_stops_by_time(self, tiny_workload):
        res = run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=10**6, time_limit=0.2),
        )
        assert res.stopped_by == "time"
        assert res.iterations < 10**6

    def test_stops_by_stall(self, tiny_workload):
        res = run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=10**4, stall_iterations=5),
        )
        assert res.stopped_by == "stall"


class TestInitialString:
    def test_explicit_initial_used(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        res = run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=0),
            initial=init,
        )
        assert res.best_string == init

    def test_initial_not_mutated(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        before = init.pairs()
        run_se(tiny_workload, SEConfig(seed=1, max_iterations=10), initial=init)
        assert init.pairs() == before

    def test_run_improves_on_initial(self, tiny_workload):
        init = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 77
        )
        start = Simulator(tiny_workload).string_makespan(init)
        res = run_se(
            tiny_workload, SEConfig(seed=1, max_iterations=50), initial=init
        )
        assert res.best_makespan <= start


class TestObservers:
    def test_observer_called_each_iteration(self, tiny_workload):
        records: list[IterationRecord] = []
        run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=12),
            observers=[lambda rec, s: records.append(rec)],
        )
        assert [r.iteration for r in records] == list(range(1, 13))

    def test_string_snapshots(self, tiny_workload):
        snaps = StringSnapshots()
        run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=8),
            observers=[snaps],
        )
        assert len(snaps.snapshots) == 8
        for s in snaps.snapshots:
            assert is_valid_for(s, tiny_workload.graph)

    def test_stall_detector_tracks_streaks(self, tiny_workload):
        det = StallDetector()
        run_se(
            tiny_workload,
            SEConfig(seed=1, max_iterations=40),
            observers=[det],
        )
        assert det.longest_streak >= det.current_streak >= 0
