"""Unit tests for the SE selection step (paper §4.4)."""

import numpy as np
import pytest

from repro.core.selection import expected_selection_fraction, select_subtasks
from repro.model.graph import TaskGraph


@pytest.fixture
def graph():
    # levels: 0 -> {1,2} -> 3
    return TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestSelectSubtasks:
    def test_zero_goodness_selects_everything(self, graph, rng):
        g = np.zeros(4)
        sel = select_subtasks(g, graph, bias=-0.5, rng=rng)
        assert sel == [0, 1, 2, 3]

    def test_goodness_one_with_positive_bias_selects_nothing(self, graph, rng):
        g = np.ones(4)
        assert select_subtasks(g, graph, bias=0.1, rng=rng) == []

    def test_result_sorted_by_level(self, graph):
        rng = np.random.default_rng(0)
        g = np.zeros(4)
        sel = select_subtasks(g, graph, bias=-1.0, rng=rng)
        levels = [graph.level(t) for t in sel]
        assert levels == sorted(levels)

    def test_negative_bias_selects_more(self, graph):
        g = np.full(4, 0.5)
        counts = {}
        for bias in (-0.3, 0.3):
            total = 0
            rng = np.random.default_rng(7)
            for _ in range(300):
                total += len(select_subtasks(g, graph, bias, rng))
            counts[bias] = total
        assert counts[-0.3] > counts[0.3]

    def test_lower_goodness_more_likely_selected(self, graph):
        g = np.array([0.05, 0.95, 0.95, 0.95])
        rng = np.random.default_rng(11)
        hits = np.zeros(4)
        for _ in range(500):
            for t in select_subtasks(g, graph, 0.0, rng):
                hits[t] += 1
        assert hits[0] > hits[1] * 2

    def test_high_goodness_has_nonzero_probability(self, graph):
        """§4.4: well-placed individuals must keep an escape chance."""
        g = np.full(4, 0.95)
        rng = np.random.default_rng(13)
        total = sum(
            len(select_subtasks(g, graph, 0.0, rng)) for _ in range(1000)
        )
        assert total > 0

    def test_shape_mismatch_rejected(self, graph, rng):
        with pytest.raises(ValueError, match="shape"):
            select_subtasks(np.zeros(3), graph, 0.0, rng)

    def test_deterministic_given_rng_state(self, graph):
        g = np.full(4, 0.5)
        a = select_subtasks(g, graph, 0.0, np.random.default_rng(42))
        b = select_subtasks(g, graph, 0.0, np.random.default_rng(42))
        assert a == b


class TestExpectedSelectionFraction:
    def test_zero_goodness_full_selection(self):
        assert expected_selection_fraction(np.zeros(5), 0.0) == pytest.approx(1.0)

    def test_perfect_goodness_zero_selection(self):
        assert expected_selection_fraction(np.ones(5), 0.0) == pytest.approx(0.0)

    def test_bias_shifts_fraction(self):
        g = np.full(5, 0.5)
        assert expected_selection_fraction(g, -0.2) > expected_selection_fraction(
            g, 0.2
        )

    def test_clipping_at_one(self):
        # goodness + bias > 1 clips: fraction cannot go negative
        assert expected_selection_fraction(np.ones(3), 0.5) == pytest.approx(0.0)

    def test_matches_empirical_rate(self):
        graph = TaskGraph.from_edges(6, [])
        g = np.linspace(0.1, 0.9, 6)
        bias = 0.05
        rng = np.random.default_rng(3)
        n = 2000
        total = sum(len(select_subtasks(g, graph, bias, rng)) for _ in range(n))
        empirical = total / (n * 6)
        assert empirical == pytest.approx(
            expected_selection_fraction(g, bias), abs=0.02
        )
