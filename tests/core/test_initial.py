"""Unit tests for SE initial-solution generation (paper §4.2)."""

import numpy as np
import pytest

from repro.core.initial import initial_solution
from repro.schedule.encoding import is_valid_for


class TestInitialSolution:
    def test_valid_for_graph(self, tiny_workload, rng):
        for _ in range(20):
            s = initial_solution(
                tiny_workload.graph, tiny_workload.num_machines, rng
            )
            assert is_valid_for(s, tiny_workload.graph)

    def test_machines_in_range(self, tiny_workload, rng):
        s = initial_solution(tiny_workload.graph, tiny_workload.num_machines, rng)
        assert all(0 <= m < tiny_workload.num_machines for m in s.machines)

    def test_zero_shuffle_is_topological(self, tiny_workload, rng):
        s = initial_solution(
            tiny_workload.graph,
            tiny_workload.num_machines,
            rng,
            shuffle_range=(0.0, 0.0),
        )
        assert tuple(s.order) == tiny_workload.graph.topological_order()

    def test_shuffling_changes_order(self, tiny_workload):
        rng = np.random.default_rng(5)
        s = initial_solution(
            tiny_workload.graph,
            tiny_workload.num_machines,
            rng,
            shuffle_range=(2.0, 4.0),
        )
        # with 40-80 random moves over 20 tasks a change is certain in
        # practice for this seed
        assert tuple(s.order) != tiny_workload.graph.topological_order()

    def test_deterministic_per_rng_state(self, tiny_workload):
        a = initial_solution(
            tiny_workload.graph,
            tiny_workload.num_machines,
            np.random.default_rng(9),
        )
        b = initial_solution(
            tiny_workload.graph,
            tiny_workload.num_machines,
            np.random.default_rng(9),
        )
        assert a == b

    def test_machine_assignment_randomised(self, tiny_workload):
        rng = np.random.default_rng(2)
        s = initial_solution(tiny_workload.graph, tiny_workload.num_machines, rng)
        assert len(set(s.machines)) > 1  # not everything on one machine

    def test_bad_shuffle_range_rejected(self, tiny_workload, rng):
        with pytest.raises(ValueError, match="shuffle_range"):
            initial_solution(
                tiny_workload.graph,
                tiny_workload.num_machines,
                rng,
                shuffle_range=(3.0, 1.0),
            )
