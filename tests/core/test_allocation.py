"""Unit tests for the SE allocation step (paper §4.5)."""

import pytest

from repro.core.allocation import Allocator
from repro.schedule.encoding import is_valid_for
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator


@pytest.fixture
def sim(tiny_workload):
    return Simulator(tiny_workload)


@pytest.fixture
def allocator(tiny_workload, sim):
    return Allocator(tiny_workload, sim, y_candidates=tiny_workload.num_machines)


class TestAllocatorValidation:
    def test_y_zero_rejected(self, tiny_workload, sim):
        with pytest.raises(ValueError, match="y_candidates"):
            Allocator(tiny_workload, sim, y_candidates=0)

    def test_y_above_machine_count_rejected(self, tiny_workload, sim):
        with pytest.raises(ValueError, match="y_candidates"):
            Allocator(tiny_workload, sim, y_candidates=99)

    def test_unknown_slot_strategy_rejected(self, tiny_workload, sim):
        with pytest.raises(ValueError, match="slot"):
            Allocator(tiny_workload, sim, y_candidates=2, slots="bogus")


class TestAllocate:
    def test_empty_selection_is_noop(self, tiny_workload, sim, allocator):
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 1)
        before = s.pairs()
        result = allocator.allocate(s, [])
        assert s.pairs() == before
        assert result.moved == 0
        assert result.makespan == sim.string_makespan(s)

    def test_preserves_validity(self, tiny_workload, allocator):
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 2)
        allocator.allocate(s, list(range(tiny_workload.num_tasks)))
        assert is_valid_for(s, tiny_workload.graph)

    def test_never_worsens_with_full_y(self, tiny_workload, sim, allocator):
        """With Y = l the current location is among the candidates, so
        relocating any single subtask cannot increase the makespan."""
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 3)
        before = sim.string_makespan(s)
        result = allocator.allocate(s, [5])
        assert result.makespan <= before + 1e-9

    def test_usually_improves_random_string(self, tiny_workload, sim, allocator):
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 4)
        before = sim.string_makespan(s)
        result = allocator.allocate(s, list(range(tiny_workload.num_tasks)))
        assert result.makespan < before  # full greedy pass on a random string

    def test_trials_counted(self, tiny_workload, allocator):
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 5)
        result = allocator.allocate(s, [0, 1, 2])
        assert result.trials >= 3  # at least one probe per selected task

    def test_small_y_restricts_machines(self, tiny_workload, sim):
        """With Y=1 every relocated subtask lands on its best machine."""
        e = tiny_workload.exec_times
        alloc = Allocator(tiny_workload, sim, y_candidates=1)
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 6)
        tasks = list(range(tiny_workload.num_tasks))
        alloc.allocate(s, tasks)
        for t in tasks:
            assert s.machine_of(t) == e.best_machine(t)

    def test_larger_y_never_reaches_fewer_schedules(self, tiny_workload, sim):
        """Y=l candidate set contains the Y=1 set, so the greedy result
        from the same start cannot be worse for the single relocated task."""
        s1 = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 7)
        s2 = s1.copy()
        small = Allocator(tiny_workload, sim, y_candidates=1)
        large = Allocator(
            tiny_workload, sim, y_candidates=tiny_workload.num_machines
        )
        r1 = small.allocate(s1, [9])
        r2 = large.allocate(s2, [9])
        assert r2.makespan <= r1.makespan + 1e-9


class TestSlotStrategies:
    @pytest.mark.parametrize("task", [0, 4, 9, 15])
    def test_per_machine_matches_all_positions(self, tiny_workload, sim, task):
        """The slot optimisation must land on the same best makespan as
        the literal all-positions enumeration (ABL-SLOT equivalence)."""
        base = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 8
        )
        results = {}
        for slots in ("per-machine", "all-positions"):
            s = base.copy()
            alloc = Allocator(
                tiny_workload,
                sim,
                y_candidates=tiny_workload.num_machines,
                slots=slots,
            )
            results[slots] = alloc.allocate(s, [task]).makespan
        assert results["per-machine"] == pytest.approx(results["all-positions"])

    def test_per_machine_uses_fewer_trials(self, tiny_workload, sim):
        base = random_valid_string(
            tiny_workload.graph, tiny_workload.num_machines, 9
        )
        trials = {}
        for slots in ("per-machine", "all-positions"):
            alloc = Allocator(
                tiny_workload,
                sim,
                y_candidates=tiny_workload.num_machines,
                slots=slots,
            )
            trials[slots] = alloc.allocate(base.copy(), list(range(10))).trials
        assert trials["per-machine"] < trials["all-positions"]
