"""Unit tests for the observer utilities."""

import pytest

from repro.analysis.trace import IterationRecord
from repro.core.observers import ProgressPrinter, StallDetector, StringSnapshots
from repro.schedule.encoding import ScheduleString


def record(i, best=100.0):
    return IterationRecord(
        iteration=i,
        current_makespan=best,
        best_makespan=best,
        num_selected=2,
        elapsed_seconds=0.1 * i,
    )


@pytest.fixture
def string():
    return ScheduleString([0, 1], [0, 0], 1)


class TestProgressPrinter:
    def test_prints_every_n(self, string):
        lines = []
        p = ProgressPrinter(every=2, out=lines.append)
        for i in range(1, 7):
            p(record(i), string)
        assert len(lines) == 3  # iterations 2, 4, 6

    def test_line_contents(self, string):
        lines = []
        p = ProgressPrinter(every=1, out=lines.append)
        p(record(5, best=123.4), string)
        assert "it      5" in lines[0] or "5" in lines[0]
        assert "123.4" in lines[0]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError, match="every"):
            ProgressPrinter(every=0)

    def test_default_out_prints(self, string, capsys):
        p = ProgressPrinter(every=1)
        p(record(1), string)
        assert "best=" in capsys.readouterr().out


class TestStringSnapshots:
    def test_snapshots_are_copies(self, string):
        snaps = StringSnapshots()
        snaps(record(1), string)
        string.assign(0, 0)
        string.move(0, 1)
        assert snaps.snapshots[0].position_of(0) == 0

    def test_accumulates(self, string):
        snaps = StringSnapshots()
        for i in range(1, 4):
            snaps(record(i), string)
        assert len(snaps.snapshots) == 3


class TestStallDetector:
    def test_improvements_reset_streak(self, string):
        det = StallDetector()
        det(record(1, best=100.0), string)
        det(record(2, best=100.0), string)
        det(record(3, best=90.0), string)
        assert det.current_streak == 0
        assert det.longest_streak == 1

    def test_flat_run_streak_grows(self, string):
        det = StallDetector()
        for i in range(1, 5):
            det(record(i, best=50.0), string)
        assert det.current_streak == 3
        assert det.longest_streak == 3
