"""Unit tests for the goodness measure g = O/C (paper §4.3)."""

import numpy as np
import pytest

from repro.core.goodness import (
    GoodnessEvaluator,
    goodness_values,
    optimal_finish_times,
)
from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.schedule import Simulator
from repro.schedule.operations import random_valid_string


class TestOptimalFinishTimes:
    def test_entry_task_is_best_time(self, sample_workload):
        o = optimal_finish_times(sample_workload)
        e = sample_workload.exec_times
        assert o[0] == pytest.approx(e.best_time(0))
        assert o[1] == pytest.approx(e.best_time(1))

    def test_recursion_over_chain(self):
        # s0 -> s1, both fastest on m0 => no comm in the optimistic chain
        graph = TaskGraph.from_edges(2, [(0, 1)])
        e = ExecutionTimeMatrix([[2.0, 3.0], [9.0, 9.0]])
        tr = TransferTimeMatrix([[100.0]], 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        o = optimal_finish_times(w)
        assert o[1] == pytest.approx(5.0)

    def test_comm_charged_when_best_machines_differ(self):
        graph = TaskGraph.from_edges(2, [(0, 1)])
        e = ExecutionTimeMatrix([[2.0, 9.0], [9.0, 3.0]])
        tr = TransferTimeMatrix([[4.0]], 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        o = optimal_finish_times(w)
        assert o[1] == pytest.approx(2.0 + 4.0 + 3.0)

    def test_join_takes_slowest_input(self):
        graph = TaskGraph.from_edges(3, [(0, 2), (1, 2)])
        e = ExecutionTimeMatrix([[1.0, 10.0, 2.0]])
        tr = TransferTimeMatrix(np.zeros((0, 2)), 1)
        w = Workload(graph, HCSystem.of_size(1), e, tr)
        o = optimal_finish_times(w)
        assert o[2] == pytest.approx(12.0)

    def test_all_positive(self, tiny_workload):
        assert np.all(optimal_finish_times(tiny_workload) > 0)

    def test_stable_across_calls(self, tiny_workload):
        """Oi must not change from one generation to the next (§3)."""
        a = optimal_finish_times(tiny_workload)
        b = optimal_finish_times(tiny_workload)
        assert np.array_equal(a, b)


class TestGoodnessValues:
    def test_range_clamped_to_unit_interval(self, tiny_workload):
        o = optimal_finish_times(tiny_workload)
        sim = Simulator(tiny_workload)
        for seed in range(10):
            s = random_valid_string(
                tiny_workload.graph, tiny_workload.num_machines, seed
            )
            g = goodness_values(o, sim.finish_times(s))
            assert np.all(g >= 0.0)
            assert np.all(g <= 1.0)

    def test_perfect_placement_goodness_one(self):
        # single machine, single task: C == O exactly
        graph = TaskGraph.from_edges(1, [])
        e = ExecutionTimeMatrix([[5.0]])
        tr = TransferTimeMatrix(np.zeros((0, 0)), 1)
        w = Workload(graph, HCSystem.of_size(1), e, tr)
        o = optimal_finish_times(w)
        g = goodness_values(o, [5.0])
        assert g[0] == pytest.approx(1.0)

    def test_bad_placement_low_goodness(self):
        graph = TaskGraph.from_edges(1, [])
        e = ExecutionTimeMatrix([[5.0], [50.0]])
        tr = TransferTimeMatrix(np.zeros((1, 0)), 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        o = optimal_finish_times(w)
        g = goodness_values(o, [50.0])  # task placed on the slow machine
        assert g[0] == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            goodness_values(np.ones(3), [1.0, 2.0])

    def test_nonpositive_finish_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            goodness_values(np.ones(1), [0.0])


class TestGoodnessEvaluator:
    def test_caches_optimal(self, tiny_workload):
        ev = GoodnessEvaluator(tiny_workload)
        assert np.array_equal(
            ev.optimal, optimal_finish_times(tiny_workload)
        )

    def test_optimal_read_only(self, tiny_workload):
        ev = GoodnessEvaluator(tiny_workload)
        with pytest.raises(ValueError):
            ev.optimal[0] = 99.0

    def test_goodness_delegates(self, tiny_workload):
        ev = GoodnessEvaluator(tiny_workload)
        sim = Simulator(tiny_workload)
        s = random_valid_string(tiny_workload.graph, tiny_workload.num_machines, 3)
        fts = sim.finish_times(s)
        assert np.array_equal(
            ev.goodness(fts), goodness_values(ev.optimal, fts)
        )
