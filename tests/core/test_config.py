"""Unit tests for SEConfig and the paper's parameter guidance."""

import pytest

from repro.core.config import SEConfig, default_bias


class TestDefaultBias:
    def test_small_problems_get_negative_bias(self):
        """§4.4: negative B (-0.1..-0.3) for small problem sizes."""
        assert -0.3 <= default_bias(10) <= -0.1

    def test_large_problems_get_positive_bias(self):
        """§4.4: positive B (0..0.1) for large problem sizes."""
        assert 0.0 <= default_bias(100) <= 0.1

    def test_threshold(self):
        assert default_bias(49) < 0 < default_bias(50)


class TestSEConfigValidation:
    def test_defaults_valid(self):
        SEConfig()

    def test_bias_out_of_range(self):
        with pytest.raises(ValueError, match="selection_bias"):
            SEConfig(selection_bias=1.5)

    def test_y_zero_rejected(self):
        with pytest.raises(ValueError, match="y_candidates"):
            SEConfig(y_candidates=0)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            SEConfig(max_iterations=-1)

    def test_negative_time_limit_rejected(self):
        with pytest.raises(ValueError, match="time_limit"):
            SEConfig(time_limit=-0.1)

    def test_stall_zero_rejected(self):
        with pytest.raises(ValueError, match="stall_iterations"):
            SEConfig(stall_iterations=0)

    def test_bad_shuffle_range(self):
        with pytest.raises(ValueError, match="initial_shuffle_range"):
            SEConfig(initial_shuffle_range=(2.0, 1.0))
        with pytest.raises(ValueError, match="initial_shuffle_range"):
            SEConfig(initial_shuffle_range=(-1.0, 2.0))

    def test_bad_slot_strategy(self):
        with pytest.raises(ValueError, match="allocation_slots"):
            SEConfig(allocation_slots="magic")  # type: ignore[arg-type]


class TestResolution:
    def test_resolved_bias_explicit_wins(self):
        assert SEConfig(selection_bias=0.07).resolved_bias(10) == 0.07

    def test_resolved_bias_default_by_size(self):
        cfg = SEConfig()
        assert cfg.resolved_bias(10) == default_bias(10)
        assert cfg.resolved_bias(500) == default_bias(500)

    def test_resolved_y_defaults_to_all_machines(self):
        assert SEConfig().resolved_y(12) == 12

    def test_resolved_y_clamped_to_machine_count(self):
        assert SEConfig(y_candidates=50).resolved_y(8) == 8

    def test_resolved_y_explicit(self):
        assert SEConfig(y_candidates=3).resolved_y(8) == 3
