"""Tests of the perf-record schema and the CI regression gate.

The gate's contract: ``repro perf check`` exits 0 when every baseline
metric is within tolerance and non-zero when any metric regressed or
vanished — including on an *injected* regression, which is what CI
relies on to catch real ones.
"""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.cli import main


def rec(bench, metric, value, unit="x"):
    return perf.make_record(
        bench, metric, value, unit, commit="abc1234", python="3.11.0"
    )


class TestRecords:
    def test_schema_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        records = [rec("MICRO-A", "speedup", 2.5), rec("MICRO-B", "t", 9, "us")]
        perf.save_records(path, records)
        doc = json.loads(path.read_text())
        assert [sorted(d) for d in doc] == [
            sorted(perf.SCHEMA_FIELDS)
        ] * 2
        assert perf.load_records(path) == sorted(records, key=lambda r: r.key)

    def test_provenance_autofilled(self):
        r = perf.make_record("MICRO-A", "speedup", 1.0, "x")
        assert r.commit  # "unknown" at worst, never empty
        assert r.python.count(".") == 2

    def test_record_results_merges_by_key(self, tmp_path):
        path = tmp_path / "bench.json"
        perf.record_results(path, [rec("MICRO-A", "speedup", 1.0)])
        perf.record_results(
            path,
            [rec("MICRO-A", "speedup", 2.0), rec("MICRO-B", "speedup", 3.0)],
        )
        loaded = {r.key: r.value for r in perf.load_records(path)}
        assert loaded == {
            ("MICRO-A", "speedup"): 2.0,
            ("MICRO-B", "speedup"): 3.0,
        }

    def test_load_rejects_bad_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="list"):
            perf.load_records(path)
        path.write_text('[{"bench": "x"}]')
        with pytest.raises(ValueError, match="missing fields"):
            perf.load_records(path)

    def test_unit_direction(self):
        assert perf.lower_is_better("us")
        assert perf.lower_is_better("s")
        assert perf.lower_is_better("usd")
        assert not perf.lower_is_better("x")
        assert not perf.lower_is_better("ops/s")

    def test_cost_metric_requires_currency_unit(self):
        """A cost record without a currency unit is ambiguous about its
        regression direction; the schema rejects it at construction."""
        assert rec("MICRO-P", "schedule_cost", 5.0, "usd").unit == "usd"
        with pytest.raises(ValueError, match="currency unit"):
            rec("MICRO-P", "schedule_cost", 5.0, "")
        with pytest.raises(ValueError, match="currency unit"):
            rec("MICRO-P", "cost", 5.0, "x")

    def test_load_rejects_unitless_cost_records(self, tmp_path):
        """The `repro perf check` path: a BENCH file with a unitless
        cost record must fail to load, not silently gate wrong-way."""
        path = tmp_path / "bad_cost.json"
        doc = rec("MICRO-P", "schedule_cost", 5.0, "usd").to_dict()
        doc["unit"] = ""
        path.write_text(json.dumps([doc]))
        with pytest.raises(ValueError, match="currency unit"):
            perf.load_records(path)
        with pytest.raises(SystemExit, match="currency unit"):
            main(
                ["perf", "check", "--current", str(path), "--baseline", str(path)]
            )

    def test_cost_regression_direction_in_gate(self):
        """usd rises beyond tolerance -> regression; falls -> improved."""
        costly = [rec("A", "schedule_cost", 10.0, "usd")]
        cheap = [rec("A", "schedule_cost", 5.0, "usd")]
        assert not perf.compare_records(costly, cheap).ok
        up = perf.compare_records(cheap, costly)
        assert up.ok
        assert [e.status for e in up.entries] == ["improved"]


class TestCompare:
    def test_within_tolerance_is_ok(self):
        cmp = perf.compare_records(
            [rec("A", "speedup", 2.2)], [rec("A", "speedup", 2.0)]
        )
        assert cmp.ok and [e.status for e in cmp.entries] == ["ok"]

    def test_ratio_drop_beyond_tolerance_regresses(self):
        cmp = perf.compare_records(
            [rec("A", "speedup", 1.3)], [rec("A", "speedup", 2.0)]
        )
        assert not cmp.ok
        assert cmp.regressions[0].status == "regression"
        assert "FAIL" in cmp.describe()

    def test_time_rise_beyond_tolerance_regresses(self):
        cmp = perf.compare_records(
            [rec("A", "t", 20.0, "us")], [rec("A", "t", 10.0, "us")]
        )
        assert not cmp.ok

    def test_time_drop_is_improvement_not_failure(self):
        cmp = perf.compare_records(
            [rec("A", "t", 2.0, "us")], [rec("A", "t", 10.0, "us")]
        )
        assert cmp.ok
        assert [e.status for e in cmp.entries] == ["improved"]

    def test_missing_metric_is_a_regression(self):
        cmp = perf.compare_records([], [rec("A", "speedup", 2.0)])
        assert not cmp.ok
        assert cmp.regressions[0].status == "missing"

    def test_new_metric_rides_along(self):
        cmp = perf.compare_records([rec("A", "speedup", 2.0)], [])
        assert cmp.ok
        assert [e.status for e in cmp.entries] == ["new"]

    def test_zero_baseline(self):
        cmp = perf.compare_records(
            [rec("A", "speedup", 0.0)], [rec("A", "speedup", 0.0)]
        )
        assert cmp.ok
        cmp = perf.compare_records(
            [rec("A", "t", 1.0, "us")], [rec("A", "t", 0.0, "us")]
        )
        assert not cmp.ok

    def test_tolerance_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            perf.compare_records([], [], tolerance=-0.1)


class TestPerfCheckCli:
    def write(self, path, records):
        perf.save_records(path, records)
        return str(path)

    def test_exit_zero_when_within_tolerance(self, tmp_path, capsys):
        cur = self.write(tmp_path / "cur.json", [rec("A", "speedup", 2.1)])
        base = self.write(tmp_path / "base.json", [rec("A", "speedup", 2.0)])
        code = main(["perf", "check", "--current", cur, "--baseline", base])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        """The acceptance check: an injected regression must fail."""
        cur = self.write(tmp_path / "cur.json", [rec("A", "speedup", 1.0)])
        base = self.write(tmp_path / "base.json", [rec("A", "speedup", 2.0)])
        code = main(["perf", "check", "--current", cur, "--baseline", base])
        assert code != 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        cur = self.write(tmp_path / "cur.json", [rec("A", "speedup", 1.0)])
        base = self.write(tmp_path / "base.json", [rec("A", "speedup", 2.0)])
        args = ["perf", "check", "--current", cur, "--baseline", base]
        assert main(args + ["--tolerance", "0.6"]) == 0
        assert main(args + ["--tolerance", "0.2"]) == 1

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="missing BENCH file"):
            main(
                [
                    "perf",
                    "check",
                    "--current",
                    str(tmp_path / "nope.json"),
                    "--baseline",
                    str(tmp_path / "nope2.json"),
                ]
            )

    def test_perf_show(self, tmp_path, capsys):
        cur = self.write(tmp_path / "cur.json", [rec("A", "speedup", 2.0)])
        assert main(["perf", "show", cur]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "abc1234" in out

    def test_committed_baseline_is_loadable_and_machine_portable(self):
        """The baseline shipped in-repo must parse and pin only
        machine-portable metrics (see repro.perf docstring): dimensionless
        speedup ratios ("x"), MICRO-ONLINE's *simulated*-time flow
        latencies ("s"), and MICRO-PLATFORM's deterministic schedule
        costs ("usd") — all exactly reproducible in the pinned seeds;
        wall-clock measurements must never be baselined."""
        from pathlib import Path

        baseline = (
            Path(__file__).parent.parent
            / "benchmarks"
            / "baseline"
            / "BENCH_micro.json"
        )
        records = perf.load_records(baseline)
        assert records, "committed baseline must not be empty"
        assert {r.unit for r in records} <= {"x", "s", "usd"}
        for r in records:
            if r.unit == "s":
                assert r.bench == "MICRO-ONLINE", (
                    f"{r.key}: only MICRO-ONLINE's simulated-time metrics "
                    "may carry a time unit in the committed baseline"
                )
            if r.unit == "usd":
                assert r.bench == "MICRO-PLATFORM", (
                    f"{r.key}: only MICRO-PLATFORM's deterministic "
                    "schedule costs may carry a currency unit in the "
                    "committed baseline"
                )
        keys = {r.key for r in records}
        assert ("MICRO-BATCH-GA", "speedup") in keys
        assert ("MICRO-DELTA", "speedup") in keys
        assert ("MICRO-ONLINE", "mean_flow") in keys
        assert ("MICRO-PLATFORM", "speedup") in keys

    def test_committed_jit_baseline_is_ratio_only(self):
        """The JIT-tier baseline lives in its own file (gated only on
        the numba CI leg — folding it into BENCH_micro.json would make
        the no-numba perf job fail on "missing" jit metrics) and must
        pin only dimensionless ratios: speedups and per-core parallel
        efficiency, both machine-portable by construction."""
        from pathlib import Path

        baseline = (
            Path(__file__).parent.parent
            / "benchmarks"
            / "baseline"
            / "BENCH_micro_jit.json"
        )
        records = perf.load_records(baseline)
        assert records, "committed jit baseline must not be empty"
        assert {r.unit for r in records} == {"x"}
        keys = {r.key for r in records}
        assert ("MICRO-JIT", "speedup") in keys
        assert ("MICRO-JIT-NIC", "speedup") in keys
        assert ("MICRO-JIT-SCALE", "efficiency_4t") in keys
        # the acceptance bar: a >=10x target derated ~10% (PR-3
        # convention), never below what ±30% tolerance could let slip
        # under the NumPy tier's own ~3x
        by_key = {r.key: r.value for r in records}
        assert by_key[("MICRO-JIT", "speedup")] >= 7.0
        assert by_key[("MICRO-JIT-NIC", "speedup")] >= 7.0
        assert by_key[("MICRO-JIT-SCALE", "efficiency_4t")] >= 0.7
