"""CLI smoke tests for the risk-aware scheduling flags."""

import csv
import json

import pytest

from repro.cli import main

RISK = ["--objective", "quantile:0.9", "--scenarios", "8",
        "--distribution", "uniform:0.3"]


class TestRunRiskFlags:
    @pytest.mark.parametrize("algo", ["se", "sa", "tabu", "ga", "random"])
    def test_risk_run_prints_nominal_and_profile(self, algo, capsys):
        rc = main(
            ["run", "--algo", algo, "--preset", "small", "--seed", "1",
             "--iterations", "5", *RISK]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "nominal makespan" in out
        assert "quantile:0.9 over 8 x uniform:0.3 scenarios" in out
        assert "p95" in out and "CVaR95" in out  # the risk profile block

    def test_saa_run_prints_feasibility_verdict(self, capsys):
        rc = main(
            ["run", "--algo", "tabu", "--preset", "small", "--seed", "1",
             "--iterations", "5", "--objective", "saa:5000:0.1",
             "--scenarios", "8", "--distribution", "lognormal:0.2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "chance constraint" in out
        assert "satisfied" in out or "VIOLATED" in out

    def test_risk_flags_on_deterministic_algo_rejected(self):
        with pytest.raises(SystemExit, match="deterministic"):
            main(["run", "--algo", "heft", "--preset", "small", *RISK])

    def test_scenario_objective_without_scenarios_rejected(self):
        with pytest.raises(SystemExit, match="scenarios"):
            main(["run", "--algo", "se", "--preset", "small",
                  "--objective", "mean"])

    def test_scenarios_without_scenario_objective_rejected(self):
        with pytest.raises(SystemExit, match="no effect"):
            main(["run", "--algo", "se", "--preset", "small",
                  "--scenarios", "8"])

    def test_bad_objective_spec_rejected(self):
        with pytest.raises(SystemExit, match="objective"):
            main(["run", "--algo", "se", "--preset", "small",
                  "--objective", "percentile:0.9", "--scenarios", "4"])

    def test_bad_distribution_spec_rejected(self):
        with pytest.raises(SystemExit, match="distribution"):
            main(["run", "--algo", "se", "--preset", "small",
                  "--objective", "mean", "--scenarios", "4",
                  "--distribution", "gaussian:0.3"])

    def test_deterministic_run_prints_no_risk_block(self, capsys):
        main(["run", "--algo", "tabu", "--preset", "small", "--seed", "1",
              "--iterations", "3"])
        out = capsys.readouterr().out
        assert "nominal makespan" not in out
        assert "scenarios" not in out


class TestAlgorithmsListing:
    def test_lists_objective_grammar(self, capsys):
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "objectives (--objective" in out
        for form in ("makespan", "quantile:<q>", "cvar:<q>", "saa:<T>:<eps>"):
            assert form in out

    def test_lists_distribution_catalog(self, capsys):
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "distributions (--distribution" in out
        for form in ("deterministic", "uniform:<width>",
                     "lognormal:<sigma>", "empirical:<f1,f2,...>"):
            assert form in out


class TestSweepRiskFlags:
    def test_risk_sweep_records_the_objective_column(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--name", "risk",
                "--algorithms", "tabu,random",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--iterations", "3",
                "--quiet",
                "--out", str(tmp_path),
                *RISK,
            ]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "risk.json").read_text())
        assert {c["objective"] for c in doc["cells"]} == {"quantile:0.9"}
        assert {c["scenarios"] for c in doc["cells"]} == {8}
        rows = list(csv.DictReader(open(tmp_path / "risk.csv")))
        assert all(r["objective"] == "quantile:0.9" for r in rows)

    def test_plain_sweep_keeps_default_columns(self, tmp_path):
        rc = main(
            [
                "sweep",
                "--name", "plain",
                "--algorithms", "heft",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--quiet",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "plain.json").read_text())
        assert {c["objective"] for c in doc["cells"]} == {"makespan"}
        assert {c["scenarios"] for c in doc["cells"]} == {0}

    def test_risk_sweep_rejects_deterministic_algos(self):
        with pytest.raises(SystemExit, match="drop"):
            main(["sweep", "--name", "x", "--algorithms", "heft,tabu",
                  "--tasks", "10", "--machines", "2", *RISK])
