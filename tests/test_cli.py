"""Unit tests for the command-line interface."""

import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_presets_known(self):
        expected = {
            "paper-sample",
            "small",
            "fig3",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7",
        }
        assert set(PRESETS) == expected


class TestDescribe:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_describes_every_preset(self, preset, capsys):
        assert main(["describe", "--preset", preset, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "subtasks" in out


class TestRun:
    def test_se_run(self, capsys):
        rc = main(
            ["run", "--algo", "se", "--preset", "small", "--seed", "1",
             "--iterations", "10"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SE finished" in out
        assert "makespan" in out

    def test_ga_run(self, capsys):
        rc = main(
            ["run", "--algo", "ga", "--preset", "small", "--seed", "1",
             "--iterations", "5"]
        )
        assert rc == 0
        assert "GA finished" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["heft", "minmin", "maxmin", "olb"])
    def test_deterministic_algos(self, algo, capsys):
        rc = main(["run", "--algo", algo, "--preset", "small", "--seed", "1"])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["se", "heft"])
    def test_nic_network_run(self, algo, capsys):
        rc = main(
            ["run", "--algo", algo, "--preset", "small", "--seed", "1",
             "--iterations", "5", "--network", "nic"]
        )
        assert rc == 0
        assert "makespan (nic)" in capsys.readouterr().out

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algo", "se", "--preset", "small",
                  "--network", "token-ring"])

    def test_random_run(self, capsys):
        rc = main(
            ["run", "--algo", "random", "--preset", "small", "--seed", "1",
             "--iterations", "30"]
        )
        assert rc == 0

    def test_gantt_flag(self, capsys):
        rc = main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--gantt"]
        )
        assert rc == 0
        assert "m0" in capsys.readouterr().out

    def test_se_y_and_bias_flags(self, capsys):
        rc = main(
            ["run", "--algo", "se", "--preset", "small", "--seed", "1",
             "--iterations", "5", "--y", "2", "--bias", "-0.1"]
        )
        assert rc == 0


class TestCompareAndFigures:
    def test_compare_small_budget(self, capsys):
        rc = main(
            ["compare", "--preset", "small", "--seed", "1",
             "--budget", "0.3", "--points", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SE" in out and "GA" in out
        assert "winner timeline" in out

    def test_figure_3a(self, capsys):
        rc = main(["figure", "3a", "--seed", "1", "--iterations", "10"])
        assert rc == 0
        assert "selected" in capsys.readouterr().out

    def test_figure_4a_small(self, capsys):
        rc = main(["figure", "4a", "--seed", "1", "--iterations", "3"])
        assert rc == 0
        assert "Y=5" in capsys.readouterr().out

    def test_figure_5_small_budget(self, capsys):
        rc = main(
            ["figure", "5", "--seed", "1", "--budget", "0.4", "--points", "4"]
        )
        assert rc == 0
        assert "SE" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])


class TestSweep:
    def test_sweep_league_and_artifacts(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--name", "t",
                "--algos", "heft,olb",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--workers", "1",
                "--quiet",
                "--out", str(tmp_path),
                "--cache", str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "league" in out
        assert (tmp_path / "t.json").exists()
        assert (tmp_path / "t.csv").exists()
        assert list((tmp_path / "cache").glob("*.json"))

    def test_sweep_under_nic_records_network(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--name", "nic-sweep",
                "--algos", "heft,olb",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--network", "nic",
                "--quiet",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        import json

        doc = json.loads((tmp_path / "nic-sweep.json").read_text())
        assert {c["network"] for c in doc["cells"]} == {"nic"}
        csv_text = (tmp_path / "nic-sweep.csv").read_text()
        assert "network" in csv_text.splitlines()[0]

    def test_sweep_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit, match="unknown algorithms"):
            main(["sweep", "--algos", "bogus"])


class TestNewEngines:
    def test_sa_run(self, capsys):
        rc = main(
            ["run", "--algo", "sa", "--preset", "small", "--seed", "1",
             "--iterations", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SA finished" in out and "makespan" in out

    def test_tabu_run(self, capsys):
        rc = main(
            ["run", "--algo", "tabu", "--preset", "small", "--seed", "1",
             "--iterations", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tabu finished" in out and "makespan" in out

    def test_sa_under_nic(self, capsys):
        rc = main(
            ["run", "--algo", "sa", "--preset", "small", "--seed", "1",
             "--iterations", "2", "--network", "nic"]
        )
        assert rc == 0
        assert "makespan (nic)" in capsys.readouterr().out


class TestAlgorithmsCommand:
    def test_lists_every_registry_algorithm(self, capsys):
        from repro.runner import available_algorithms

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in available_algorithms():
            assert name in out

    def test_lists_parameter_names(self, capsys):
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "max_iterations" in out        # se / sa / tabu
        assert "stall_generations" in out     # ga
        assert "neighborhood_size" in out     # tabu
        assert "cooling" in out               # sa
        assert "batch_size" in out            # random

    def test_sweep_unknown_algorithm_error_lists_parameters(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--algos", "bogus"])
        msg = str(exc.value)
        assert "unknown algorithms" in msg
        assert "tabu" in msg and "neighborhood_size" in msg

    def test_lists_network_batch_modes(self, capsys, monkeypatch):
        # both built-in networks ship vectorized batch kernels; the
        # listing is what makes a sequential fallback visible.  Pin the
        # NumPy tier so the assertion holds on numba installs too.
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "network models" in out
        assert "contention-free" in out
        assert "nic" in out
        assert out.count("vectorized kernel") == 2
        # the *network* fallback phrase; the platform listing's cloud
        # row legitimately mentions its own (boot delays) fallback
        assert "batch evaluation: sequential scalar fallback" not in out

    def test_lists_sequential_fallback_when_no_kernel(
        self, capsys, monkeypatch
    ):
        from repro.schedule import backend as backend_mod

        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        monkeypatch.delitem(backend_mod._JIT_NETWORKS, "nic", raising=False)
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "sequential scalar fallback" in out

    def test_lists_jit_tier_when_numba_selected(self, capsys, monkeypatch):
        # numba-present path without requiring numba: selection reads
        # the module flag, and `algorithms` only *lists* tiers (never
        # compiles), so forcing the flag is an honest probe
        from repro.schedule import jit as jit_mod

        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        main(["algorithms"])
        out = capsys.readouterr().out
        assert out.count("jit kernel (numba-compiled)") == 2
        assert "batch evaluation: vectorized kernel" not in out

    def test_lists_numpy_tier_when_numba_absent(self, capsys, monkeypatch):
        from repro.schedule import jit as jit_mod

        monkeypatch.setattr(jit_mod, "_NUMBA_OK", False)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        main(["algorithms"])
        out = capsys.readouterr().out
        assert out.count("vectorized kernel") == 2
        assert "jit kernel" not in out


class TestRunVerbose:
    def test_verbose_reports_vectorized_nic(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        rc = main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--network", "nic", "--verbose"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "network 'nic': batch evaluation via vectorized kernel" in out

    def test_verbose_reports_jit_tier(self, capsys, monkeypatch):
        # heft never batch-scores, so the run completes regardless of
        # whether the forced flag is backed by a real numba install
        from repro.schedule import jit as jit_mod

        monkeypatch.setattr(jit_mod, "_NUMBA_OK", True)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        rc = main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--network", "nic", "--verbose"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "network 'nic': batch evaluation via jit kernel "
            "(numba-compiled)" in out
        )

    def test_verbose_reports_sequential_fallback(self, capsys, monkeypatch):
        from repro.schedule import backend as backend_mod

        backend_mod._ensure_builtins()
        monkeypatch.delitem(backend_mod._BATCH_NETWORKS, "nic")
        monkeypatch.delitem(backend_mod._JIT_NETWORKS, "nic", raising=False)
        rc = main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--network", "nic", "--verbose"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "network 'nic': batch evaluation via sequential scalar "
            "fallback" in out
        )

    def test_quiet_by_default(self, capsys):
        main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--network", "nic"]
        )
        assert "batch evaluation" not in capsys.readouterr().out


class TestCompareNetwork:
    def test_compare_under_nic(self, capsys):
        rc = main(
            ["compare", "--preset", "small", "--seed", "1",
             "--budget", "0.2", "--points", "2",
             "--algos", "se,tabu", "--network", "nic"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "'nic'" in out
        assert "final best" in out


class TestSweepNewEngines:
    def test_five_algorithm_sweep(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--name", "five",
                "--algorithms", "se,ga,sa,tabu,random",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--iterations", "5",
                "--quiet",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "league" in out
        for algo in ("se", "ga", "sa", "tabu", "random"):
            assert algo in out
        import json

        doc = json.loads((tmp_path / "five.json").read_text())
        assert {c["algorithm"] for c in doc["cells"]} == {
            "se", "ga", "sa", "tabu", "random",
        }


class TestCompareAlgos:
    def test_compare_sa_vs_tabu(self, capsys):
        rc = main(
            ["compare", "--preset", "small", "--seed", "1",
             "--budget", "0.2", "--points", "3", "--algos", "sa,tabu"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SA" in out and "TABU" in out
        assert "winner timeline" in out

    def test_compare_unknown_engine_rejected(self):
        with pytest.raises(SystemExit, match="unknown comparison"):
            main(["compare", "--preset", "small", "--budget", "0.1",
                  "--algos", "bogus"])


class TestPlatformFlag:
    def test_run_prints_cost_on_priced_platform(self, capsys):
        rc = main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--platform", "spot"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost (spot):" in out and "usd" in out

    def test_run_uniform_prints_no_cost_line(self, capsys):
        main(["run", "--algo", "heft", "--preset", "small", "--seed", "1"])
        assert "usd" not in capsys.readouterr().out

    def test_run_unknown_platform_rejected(self):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["run", "--algo", "heft", "--preset", "small",
                  "--platform", "mainframe"])

    def test_verbose_lists_platform_cost_paths(self, capsys):
        main(
            ["run", "--algo", "heft", "--preset", "small", "--seed", "1",
             "--verbose"]
        )
        out = capsys.readouterr().out
        assert "platform catalogs (--platform)" in out
        # spot + uniform keep the vectorized cost column; cloud's boot
        # delays force the sequential fallback
        assert out.count("cost scoring: vectorized") == 2
        assert "sequential scalar fallback (boot delays)" in out

    def test_algorithms_lists_platforms(self, capsys):
        main(["algorithms"])
        out = capsys.readouterr().out
        assert "platform catalogs (--platform)" in out
        for name in ("cloud", "spot", "uniform"):
            assert name in out

    def test_sa_run_on_platform(self, capsys):
        rc = main(
            ["run", "--algo", "sa", "--preset", "small", "--seed", "1",
             "--iterations", "30", "--platform", "spot"]
        )
        assert rc == 0
        assert "cost (spot):" in capsys.readouterr().out


class TestParetoCommand:
    def test_pareto_traces_a_front(self, capsys):
        rc = main(
            ["pareto", "--preset", "small", "--seed", "2",
             "--iterations", "10", "--weights", "0,0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HEFT reference on 'spot'" in out
        assert "cost (usd)" in out  # the front table
        assert "cheapest within 1.2x" in out

    def test_pareto_rejects_uniform(self):
        with pytest.raises(SystemExit, match="billing table"):
            main(["pareto", "--preset", "small", "--platform", "uniform"])

    def test_pareto_rejects_bad_weights(self):
        with pytest.raises(SystemExit, match="weights"):
            main(["pareto", "--preset", "small", "--weights", "0,2.5"])
        with pytest.raises(SystemExit, match="weights"):
            main(["pareto", "--preset", "small", "--weights", "abc"])

    def test_pareto_unknown_platform_rejected(self):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["pareto", "--preset", "small", "--platform", "vax"])


class TestSweepPlatform:
    def test_sweep_reports_mean_cost(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--name", "spot-sweep",
                "--algorithms", "heft,olb",
                "--tasks", "10",
                "--machines", "2",
                "--connectivities", "low",
                "--heterogeneities", "low",
                "--ccrs", "0.5",
                "--platform", "spot",
                "--quiet",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean schedule cost" in out and "usd" in out
        import csv

        rows = list(csv.DictReader(open(tmp_path / "spot-sweep.csv")))
        assert rows and all(r["platform"] == "spot" for r in rows)
        assert all(float(r["cost"]) > 0 for r in rows)

    def test_sweep_unknown_platform_rejected(self):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["sweep", "--name", "x", "--algorithms", "heft",
                  "--platform", "abacus"])
