"""Unit tests for RNG handling, timers, and validation helpers."""

import time

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    random_permutation,
    spawn_rngs,
    weighted_choice,
)
from repro.utils.timers import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_fraction_range,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="random generator"):
            as_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 4)) == 4

    def test_independent_streams(self):
        a, b = spawn_rngs(1, 2)
        assert a.random() != b.random()

    def test_deterministic_from_seed(self):
        a1, _ = spawn_rngs(9, 2)
        a2, _ = spawn_rngs(9, 2)
        assert a1.random() == a2.random()

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 3)
        assert len(children) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_rngs(1, -1)

    def test_zero_ok(self):
        assert spawn_rngs(1, 0) == []


class TestRandomHelpers:
    def test_random_permutation_is_permutation(self):
        rng = np.random.default_rng(0)
        items = list("abcdef")
        perm = random_permutation(rng, items)
        assert sorted(perm) == sorted(items)

    def test_weighted_choice_respects_weights(self):
        rng = np.random.default_rng(0)
        picks = [
            weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(20)
        ]
        assert set(picks) == {"b"}

    def test_weighted_choice_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="length"):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            weighted_choice(rng, ["a"], [-1.0])
        with pytest.raises(ValueError, match="positive"):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])


class TestStopwatch:
    def test_elapsed_monotone(self):
        sw = Stopwatch()
        a = sw.elapsed()
        b = sw.elapsed()
        assert b >= a >= 0

    def test_restart(self):
        sw = Stopwatch()
        time.sleep(0.01)
        sw.restart()
        assert sw.elapsed() < 0.01


class TestTimeBudget:
    def test_iteration_cap(self):
        b = TimeBudget.iterations(5)
        assert not b.expired(4)
        assert b.expired(5)

    def test_wall_clock(self):
        b = TimeBudget.wall_clock(0.02).start()
        assert not b.expired(0)
        time.sleep(0.03)
        assert b.expired(0)

    def test_unbounded_never_expires(self):
        b = TimeBudget()
        assert not b.expired(10**9)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            TimeBudget(seconds=-1.0)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            TimeBudget(max_iterations=-1)

    def test_elapsed_resets_on_start(self):
        b = TimeBudget(seconds=10.0)
        time.sleep(0.01)
        b.start()
        assert b.elapsed() < 0.01


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError, match="x"):
            check_nonnegative("x", -1.0)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError, match="p"):
            check_probability("p", 1.01)

    def test_check_index(self):
        assert check_index("i", 2, 3) == 2
        with pytest.raises(IndexError, match="i"):
            check_index("i", 3, 3)
        with pytest.raises(TypeError, match="int"):
            check_index("i", True, 3)

    def test_check_fraction_range(self):
        check_fraction_range("lo", 0.0, 1.0)
        with pytest.raises(ValueError):
            check_fraction_range("lo", 2.0, 1.0)
        with pytest.raises(ValueError):
            check_fraction_range("lo", -1.0, 1.0)
