"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
    paper_sample_workload,
)
from repro.workloads import build_workload, WorkloadSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sample_workload() -> Workload:
    """The paper's Figure-1 instance (7 tasks, 2 machines)."""
    return paper_sample_workload()


@pytest.fixture
def diamond_workload() -> Workload:
    """A hand-built 4-task diamond on 2 machines with round numbers.

    DAG: s0 -> {s1, s2} -> s3, data items d0..d3.  E and Tr are chosen so
    expected schedule values are easy to compute by hand in tests.
    """
    graph = TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    e = ExecutionTimeMatrix(
        [
            # s0   s1   s2   s3
            [10.0, 20.0, 30.0, 10.0],  # m0
            [15.0, 10.0, 20.0, 25.0],  # m1
        ]
    )
    tr = TransferTimeMatrix([[5.0, 5.0, 5.0, 5.0]], num_machines=2)
    return Workload(graph, HCSystem.of_size(2), e, tr, name="diamond")


@pytest.fixture
def tiny_workload() -> Workload:
    """A 20-task / 4-machine random workload for engine tests."""
    return build_workload(
        WorkloadSpec(
            num_tasks=20,
            num_machines=4,
            connectivity="medium",
            heterogeneity="medium",
            ccr=0.5,
            seed=777,
            name="tiny",
        )
    )


@pytest.fixture
def single_machine_workload() -> Workload:
    """Degenerate system with one machine — all comm is free."""
    graph = TaskGraph.from_edges(5, [(0, 2), (1, 2), (2, 3), (2, 4)])
    e = ExecutionTimeMatrix([[3.0, 4.0, 5.0, 6.0, 7.0]])
    tr = TransferTimeMatrix(np.zeros((0, 4)), num_machines=1)
    return Workload(graph, HCSystem.of_size(1), e, tr, name="uni")
