"""Unit tests for workload presets and suites."""

import pytest

from repro.workloads.presets import (
    WorkloadSpec,
    build_workload,
    figure3_workload,
    figure4a_workload,
    figure4b_workload,
    figure5_workload,
    figure6_workload,
    figure7_workload,
    small_workload,
)
from repro.workloads.suite import (
    WorkloadSuite,
    paper_comparison_suite,
    smoke_suite,
)


class TestWorkloadSpec:
    def test_size_class_threshold(self):
        assert WorkloadSpec(num_tasks=20).size_class() == "small"
        assert WorkloadSpec(num_tasks=100).size_class() == "large"

    def test_with_seed(self):
        spec = WorkloadSpec(seed=1).with_seed(2)
        assert spec.seed == 2

    def test_build_dimensions(self):
        w = build_workload(WorkloadSpec(num_tasks=25, num_machines=5, seed=1))
        assert w.num_tasks == 25
        assert w.num_machines == 5

    def test_build_deterministic(self):
        a = build_workload(WorkloadSpec(seed=11, num_tasks=30, num_machines=4))
        b = build_workload(WorkloadSpec(seed=11, num_tasks=30, num_machines=4))
        assert a.exec_times == b.exec_times
        assert a.transfer_times == b.transfer_times
        assert [d.edge for d in a.graph.data_items] == [
            d.edge for d in b.graph.data_items
        ]

    def test_unknown_connectivity_rejected(self):
        with pytest.raises(ValueError, match="connectivity"):
            build_workload(WorkloadSpec(connectivity="extreme", seed=1))

    def test_heterogeneity_axis_changes_e(self):
        lo = build_workload(
            WorkloadSpec(seed=1, num_tasks=40, num_machines=8, heterogeneity="low")
        )
        hi = build_workload(
            WorkloadSpec(seed=1, num_tasks=40, num_machines=8, heterogeneity="high")
        )
        assert hi.exec_times.heterogeneity() > lo.exec_times.heterogeneity()

    def test_ccr_axis_changes_tr(self):
        lo = build_workload(WorkloadSpec(seed=1, num_tasks=40, ccr=0.1))
        hi = build_workload(WorkloadSpec(seed=1, num_tasks=40, ccr=1.0))
        assert hi.ccr_estimate() > lo.ccr_estimate()


class TestPaperPresets:
    def test_small_is_small(self):
        w = small_workload(seed=1)
        assert w.classification.size == "small"

    def test_fig3_large_high_connectivity(self):
        w = figure3_workload(seed=1)
        assert w.classification.size == "large"
        assert w.classification.connectivity == "high"

    def test_fig4_heterogeneity_split(self):
        a = figure4a_workload(seed=1)
        b = figure4b_workload(seed=1)
        assert a.classification.heterogeneity == "low"
        assert b.classification.heterogeneity == "high"
        assert a.num_machines == b.num_machines == 20

    def test_fig5_dimensions(self):
        """§5.3: 100 tasks and 20 machines."""
        w = figure5_workload(seed=1)
        assert w.num_tasks == 100
        assert w.num_machines == 20
        assert w.classification.connectivity == "high"

    def test_fig6_ccr_one(self):
        w = figure6_workload(seed=1)
        assert w.classification.ccr == 1.0
        assert w.ccr_estimate() == pytest.approx(1.0, rel=0.35)

    def test_fig7_low_everything(self):
        w = figure7_workload(seed=1)
        c = w.classification
        assert (c.connectivity, c.heterogeneity, c.ccr) == ("low", "low", 0.1)

    @pytest.mark.parametrize(
        "factory",
        [
            small_workload,
            figure3_workload,
            figure4a_workload,
            figure4b_workload,
            figure5_workload,
            figure6_workload,
            figure7_workload,
        ],
    )
    def test_presets_deterministic(self, factory):
        a = factory(seed=42)
        b = factory(seed=42)
        assert a.exec_times == b.exec_times


class TestSuites:
    def test_grid_size(self):
        s = WorkloadSuite(
            num_tasks=10,
            num_machines=2,
            connectivities=("low", "high"),
            heterogeneities=("low",),
            ccrs=(0.1, 1.0),
            replicates=3,
            seed=1,
        )
        assert len(s) == 2 * 1 * 2 * 3

    def test_cells_buildable(self):
        s = smoke_suite(seed=1)
        w = s.cells[0].build()
        assert w.num_tasks == 20

    def test_build_all(self):
        s = WorkloadSuite(
            num_tasks=8,
            num_machines=2,
            connectivities=("low",),
            heterogeneities=("low",),
            ccrs=(0.1,),
            seed=1,
        )
        assert len(s.build_all()) == 1

    def test_replicates_have_distinct_seeds(self):
        s = WorkloadSuite(
            num_tasks=8,
            num_machines=2,
            connectivities=("low",),
            heterogeneities=("low",),
            ccrs=(0.1,),
            replicates=2,
            seed=1,
        )
        seeds = {c.spec.seed for c in s}
        assert len(seeds) == 2

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            WorkloadSuite(connectivities=())

    def test_zero_replicates_rejected(self):
        with pytest.raises(ValueError, match="replicates"):
            WorkloadSuite(replicates=0)

    def test_paper_suite_covers_all_classes(self):
        s = paper_comparison_suite(seed=1)
        conns = {c.spec.connectivity for c in s}
        hets = {c.spec.heterogeneity for c in s}
        ccrs = {c.spec.ccr for c in s}
        assert conns == {"low", "medium", "high"}
        assert hets == {"low", "medium", "high"}
        assert ccrs == {0.1, 0.5, 1.0}

    def test_suite_deterministic(self):
        a = WorkloadSuite(num_tasks=8, num_machines=2, seed=5)
        b = WorkloadSuite(num_tasks=8, num_machines=2, seed=5)
        assert [c.spec.seed for c in a] == [c.spec.seed for c in b]
