"""Unit tests for DAG generators."""

import pytest

from repro.workloads.generator import (
    CONNECTIVITY_EDGES_PER_TASK,
    chain_dag,
    fork_join_dag,
    gnp_dag,
    layered_dag,
)


class TestLayeredDag:
    def test_task_count(self):
        g = layered_dag(30, seed=1)
        assert g.num_tasks == 30

    def test_single_task(self):
        g = layered_dag(1, seed=1)
        assert g.num_tasks == 1
        assert g.num_data_items == 0

    def test_acyclic_by_construction(self):
        for seed in range(10):
            g = layered_dag(25, seed=seed)
            assert g.is_valid_order(g.topological_order())

    def test_every_non_entry_has_input(self):
        g = layered_dag(40, num_levels=5, seed=2)
        entries = set(g.entry_tasks())
        for t in range(g.num_tasks):
            if t not in entries:
                assert g.predecessors(t), f"task {t} is isolated"

    def test_levels_parameter_respected(self):
        g = layered_dag(30, num_levels=6, seed=3)
        # level count can only shrink if edges skip, but never exceeds
        assert g.num_levels <= 6
        assert g.num_levels >= 2

    def test_connectivity_knob_monotone(self):
        low = layered_dag(60, edges_per_task=1.0, seed=4)
        high = layered_dag(60, edges_per_task=4.0, seed=4)
        assert high.num_data_items > low.num_data_items

    def test_connectivity_classes_defined(self):
        assert set(CONNECTIVITY_EDGES_PER_TASK) == {"low", "medium", "high"}
        assert (
            CONNECTIVITY_EDGES_PER_TASK["low"]
            < CONNECTIVITY_EDGES_PER_TASK["medium"]
            < CONNECTIVITY_EDGES_PER_TASK["high"]
        )

    def test_sizes_in_range(self):
        g = layered_dag(30, size_range=(2.0, 3.0), seed=5)
        for d in g.data_items:
            assert 2.0 <= d.size <= 3.0

    def test_deterministic_per_seed(self):
        a = layered_dag(30, seed=6)
        b = layered_dag(30, seed=6)
        assert [d.edge for d in a.data_items] == [d.edge for d in b.data_items]

    def test_seeds_vary_structure(self):
        a = layered_dag(30, seed=7)
        b = layered_dag(30, seed=8)
        assert [d.edge for d in a.data_items] != [d.edge for d in b.data_items]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"num_tasks": 0}, "num_tasks"),
            ({"num_tasks": 5, "edges_per_task": -1.0}, "edges_per_task"),
            ({"num_tasks": 5, "locality": 1.5}, "locality"),
            ({"num_tasks": 5, "size_range": (3.0, 1.0)}, "size_range"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            layered_dag(**kwargs)

    def test_too_many_levels_clamped(self):
        # more levels than tasks is clamped to one task per level
        g = layered_dag(3, num_levels=10, seed=0)
        assert g.num_tasks == 3
        assert g.num_levels <= 3


class TestGnpDag:
    def test_acyclic(self):
        for seed in range(10):
            g = gnp_dag(15, 0.4, seed=seed)
            assert g.is_valid_order(g.topological_order())

    def test_probability_zero_no_edges(self):
        assert gnp_dag(10, 0.0, seed=1).num_data_items == 0

    def test_probability_one_total_order(self):
        g = gnp_dag(6, 1.0, seed=1)
        assert g.num_data_items == 6 * 5 // 2

    def test_labels_not_trivially_sorted(self):
        # with a random position permutation, some edge (u, v) with u > v
        # appears almost surely in a dense draw
        g = gnp_dag(12, 0.8, seed=3)
        assert any(d.producer > d.consumer for d in g.data_items)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_tasks"):
            gnp_dag(0, 0.5)
        with pytest.raises(ValueError, match="edge_probability"):
            gnp_dag(5, 1.5)


class TestFixedShapes:
    def test_chain(self):
        g = chain_dag(5)
        assert g.num_data_items == 4
        assert g.num_levels == 5
        assert g.entry_tasks() == (0,)
        assert g.exit_tasks() == (4,)

    def test_chain_single(self):
        assert chain_dag(1).num_data_items == 0

    def test_fork_join(self):
        g = fork_join_dag(3)
        assert g.num_tasks == 5
        assert g.num_data_items == 6
        assert g.entry_tasks() == (0,)
        assert g.exit_tasks() == (4,)
        assert g.num_levels == 3

    def test_fork_join_validation(self):
        with pytest.raises(ValueError, match="num_branches"):
            fork_join_dag(0)

    def test_chain_validation(self):
        with pytest.raises(ValueError, match="num_tasks"):
            chain_dag(0)
