"""Unit tests for heterogeneity (E) and CCR (Tr) generation."""

import numpy as np
import pytest

from repro.workloads.ccr import CCR_CLASSES, ccr_class, transfer_matrix
from repro.workloads.generator import layered_dag
from repro.workloads.heterogeneity import (
    HETEROGENEITY_FACTOR,
    execution_matrix,
    heterogeneity_factor,
)


class TestExecutionMatrix:
    def test_shape(self):
        e = execution_matrix(4, 10, seed=1)
        assert e.num_machines == 4
        assert e.num_tasks == 10

    def test_all_positive(self):
        e = execution_matrix(4, 10, machine_factor=10.0, seed=1)
        assert np.all(e.values > 0)

    def test_task_range_bounds(self):
        e = execution_matrix(
            3, 20, machine_factor=1.0, task_range=(10.0, 20.0), seed=1
        )
        # factor 1.0 => values equal tau in [10, 20]
        assert np.all(e.values >= 10.0)
        assert np.all(e.values <= 20.0)

    def test_heterogeneity_monotone_in_factor(self):
        low = execution_matrix(8, 40, machine_factor=1.1, seed=2)
        high = execution_matrix(8, 40, machine_factor=10.0, seed=2)
        assert high.heterogeneity() > low.heterogeneity()

    def test_consistent_mode_orders_machines(self):
        e = execution_matrix(
            4, 10, machine_factor=5.0, consistency="consistent", seed=3
        )
        # a consistent matrix has one fastest machine for every task
        best = {e.best_machine(t) for t in range(10)}
        assert len(best) == 1

    def test_inconsistent_mode_varies_best_machine(self):
        e = execution_matrix(
            6, 40, machine_factor=10.0, consistency="inconsistent", seed=4
        )
        best = {e.best_machine(t) for t in range(40)}
        assert len(best) > 1

    def test_deterministic_per_seed(self):
        a = execution_matrix(3, 5, seed=7)
        b = execution_matrix(3, 5, seed=7)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"num_machines": 0, "num_tasks": 3}, "at least one"),
            ({"num_machines": 2, "num_tasks": 3, "machine_factor": 0.5}, "machine_factor"),
            ({"num_machines": 2, "num_tasks": 3, "task_range": (0.0, 5.0)}, "task_range"),
            (
                {"num_machines": 2, "num_tasks": 3, "consistency": "odd"},
                "consistency",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            execution_matrix(**kwargs)

    def test_factor_lookup(self):
        assert heterogeneity_factor("low") == HETEROGENEITY_FACTOR["low"]
        with pytest.raises(ValueError, match="unknown"):
            heterogeneity_factor("extreme")


class TestTransferMatrix:
    @pytest.fixture
    def graph(self):
        return layered_dag(30, edges_per_task=2.0, seed=1)

    @pytest.fixture
    def e(self, graph):
        return execution_matrix(4, graph.num_tasks, seed=2)

    def test_shape(self, graph, e):
        tr = transfer_matrix(graph, e, ccr=0.5, seed=3)
        assert tr.num_items == graph.num_data_items
        assert tr.num_machines == 4

    def test_zero_ccr_zero_transfers(self, graph, e):
        tr = transfer_matrix(graph, e, ccr=0.0, seed=3)
        assert tr.mean_time() == 0.0

    def test_achieved_ccr_close_to_target(self, graph, e):
        for target in (0.1, 1.0):
            tr = transfer_matrix(graph, e, ccr=target, seed=4)
            achieved = tr.mean_time() / e.values.mean()
            assert achieved == pytest.approx(target, rel=0.35)

    def test_ccr_monotone(self, graph, e):
        low = transfer_matrix(graph, e, ccr=0.1, seed=5)
        high = transfer_matrix(graph, e, ccr=1.0, seed=5)
        assert high.mean_time() > low.mean_time()

    def test_single_machine_empty(self, graph):
        e1 = execution_matrix(1, graph.num_tasks, seed=6)
        tr = transfer_matrix(graph, e1, ccr=1.0, seed=6)
        assert tr.values.shape == (0, graph.num_data_items)

    def test_negative_ccr_rejected(self, graph, e):
        with pytest.raises(ValueError, match="ccr"):
            transfer_matrix(graph, e, ccr=-0.1)

    def test_bad_jitter_rejected(self, graph, e):
        with pytest.raises(ValueError, match="item_jitter"):
            transfer_matrix(graph, e, ccr=0.5, item_jitter=(2.0, 1.0))

    def test_deterministic_per_seed(self, graph, e):
        a = transfer_matrix(graph, e, ccr=0.5, seed=9)
        b = transfer_matrix(graph, e, ccr=0.5, seed=9)
        assert a == b


class TestCcrClass:
    def test_exact_values(self):
        assert ccr_class(0.1) == "low"
        assert ccr_class(0.5) == "medium"
        assert ccr_class(1.0) == "high"

    def test_nearest(self):
        assert ccr_class(0.05) == "low"
        assert ccr_class(2.0) == "high"

    def test_classes_cover_paper_values(self):
        assert CCR_CLASSES["low"] == 0.1
        assert CCR_CLASSES["high"] == 1.0
