"""Hypothesis strategies for the property-based tests.

DAGs are generated directly (edges only between ``i < j``) so every
drawn graph is acyclic by construction; matrices are derived from a
drawn seed through the library's own generators, keeping draw sizes
small while still covering the full value space.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
    num_pairs,
)
from repro.schedule import random_valid_string


@st.composite
def task_graphs(draw, min_tasks: int = 1, max_tasks: int = 10):
    """A random DAG with up to ``k(k-1)/2`` edges (i -> j only for i < j)."""
    k = draw(st.integers(min_tasks, max_tasks))
    all_pairs = [(i, j) for i in range(k) for j in range(i + 1, k)]
    if all_pairs:
        edges = draw(
            st.lists(
                st.sampled_from(all_pairs),
                unique=True,
                max_size=min(len(all_pairs), 3 * k),
            )
        )
    else:
        edges = []
    return TaskGraph.from_edges(k, sorted(edges))


@st.composite
def workloads(
    draw,
    min_tasks: int = 1,
    max_tasks: int = 8,
    min_machines: int = 1,
    max_machines: int = 4,
):
    """A random workload: drawn DAG + seeded random E and Tr."""
    graph = draw(task_graphs(min_tasks=min_tasks, max_tasks=max_tasks))
    l = draw(st.integers(min_machines, max_machines))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    e = ExecutionTimeMatrix(
        rng.uniform(1.0, 50.0, size=(l, graph.num_tasks))
    )
    tr = TransferTimeMatrix(
        rng.uniform(0.0, 20.0, size=(num_pairs(l), graph.num_data_items)),
        num_machines=l,
    )
    return Workload(graph, HCSystem.of_size(l), e, tr)


@st.composite
def workload_strings(draw, **kwargs):
    """A workload together with a uniformly random valid string for it."""
    w = draw(workloads(**kwargs))
    seed = draw(st.integers(0, 2**32 - 1))
    s = random_valid_string(w.graph, w.num_machines, seed)
    return w, s


@st.composite
def graph_strings(draw, **kwargs):
    """A graph, a machine count and a valid string over them."""
    graph = draw(task_graphs(**kwargs))
    l = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**32 - 1))
    s = random_valid_string(graph, l, seed)
    return graph, l, s


#: Arrival instants mix a small shared grid with free floats so exact
#: ties (simultaneous arrivals) are drawn often, not almost never.
_ARRIVAL_GRID = (0.0, 1.0, 2.5, 10.0, 50.0)


@st.composite
def arrival_traces(
    draw,
    min_jobs: int = 0,
    max_jobs: int = 4,
    max_tasks: int = 6,
    max_machines: int = 3,
):
    """A small :class:`repro.online.JobStream` over one machine pool.

    Jobs are declarative :class:`~repro.workloads.presets.WorkloadSpec`
    recipes (distinct seeded DAGs of varying size/class) with arrival
    times that frequently coincide, exercising the service's
    same-instant tie-breaks.
    """
    from repro.online import JobArrival, JobStream
    from repro.workloads.presets import WorkloadSpec

    l = draw(st.integers(1, max_machines))
    n = draw(st.integers(min_jobs, max_jobs))
    arrivals = []
    for i in range(n):
        t = draw(
            st.one_of(
                st.sampled_from(_ARRIVAL_GRID),
                st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
            )
        )
        spec = WorkloadSpec(
            num_tasks=draw(st.integers(1, max_tasks)),
            num_machines=l,
            connectivity=draw(st.sampled_from(("low", "medium", "high"))),
            heterogeneity=draw(st.sampled_from(("low", "medium", "high"))),
            ccr=draw(st.sampled_from((0.1, 0.5, 1.0))),
            seed=draw(st.integers(0, 2**31 - 1)),
            t_arrival=t,
        )
        arrivals.append(JobArrival(job_id=f"job-{i}", spec=spec))
    return JobStream(arrivals)
