"""Property-based round-trip tests for serialization and SVG export."""

import xml.etree.ElementTree as ET

from hypothesis import given

from repro.io.serialization import (
    schedule_from_dict,
    schedule_to_dict,
    string_from_dict,
    string_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.io.visual import graph_to_dot, schedule_to_svg
from repro.schedule.simulator import Simulator
from tests.strategies import workload_strings, workloads


@given(workloads())
def test_workload_roundtrip_evaluates_identically(w):
    back = workload_from_dict(workload_to_dict(w))
    assert back.num_tasks == w.num_tasks
    assert back.num_machines == w.num_machines
    assert back.exec_times == w.exec_times
    assert back.transfer_times == w.transfer_times


@given(workload_strings())
def test_string_roundtrip_exact(data):
    w, s = data
    assert string_from_dict(string_to_dict(s)) == s


@given(workload_strings())
def test_schedule_roundtrip_exact(data):
    w, s = data
    sched = Simulator(w).evaluate(s)
    assert schedule_from_dict(schedule_to_dict(sched)) == sched


@given(workload_strings())
def test_roundtripped_workload_reproduces_makespans(data):
    w, s = data
    back = workload_from_dict(workload_to_dict(w))
    assert Simulator(back).string_makespan(s) == Simulator(w).string_makespan(s)


@given(workload_strings())
def test_svg_always_well_formed(data):
    w, s = data
    sched = Simulator(w).evaluate(s)
    ET.fromstring(schedule_to_svg(w, sched))


@given(workloads())
def test_dot_mentions_every_task_and_edge(w):
    dot = graph_to_dot(w.graph)
    for t in range(w.num_tasks):
        assert f"s{t} [" in dot
    assert dot.count("->") == w.num_data_items
