"""Property tests: the JIT kernel tier is bit-identical to the NumPy tier.

The contract the compiled-tier tentpole rests on: for any workload and
any batch of valid strings, the :mod:`repro.schedule.jit` walks return
*the same floats, bit for bit*, as the NumPy kernels
(``BatchSimulator`` / ``ContentionBatchSimulator``) — and transitively
(via ``test_batch_properties.py`` / ``test_contention_batch_properties
.py``) as the scalar simulators.  On numba-free installations the walks
run as plain Python; numba compiles *the same bodies* without
``fastmath``, so no reassociation can diverge the compiled results from
what is pinned here.

Also pinned:

* **degradation** — with every transfer time zero the JIT NIC walk
  collapses exactly to the JIT plain walk (and both to the scalar
  ``Simulator``), mirroring the NumPy-tier property;
* **chunking** — any ``chunk_size`` partitions a batch into the same
  per-row results (the JIT classes default to one huge chunk);
* **edges** — empty batches and single-task workloads;
* **forced fallback** — under ``REPRO_KERNEL=numpy`` the selected
  backend reports the ``vectorized`` tier and scores batches
  bit-identically to the JIT classes invoked directly.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import TransferTimeMatrix, Workload, num_pairs
from repro.schedule import (
    BatchSimulator,
    Simulator,
    make_simulator,
    random_valid_string,
)
from repro.schedule.jit import JitBatchSimulator, JitContentionBatchSimulator
from repro.schedule.vectorized_contention import ContentionBatchSimulator
from tests.strategies import workloads


@st.composite
def workload_batches(draw, max_batch: int = 6):
    """A workload plus a batch of independent valid strings for it."""
    w = draw(workloads(max_tasks=8, max_machines=4))
    n = draw(st.integers(0, max_batch))
    seeds = [draw(st.integers(0, 2**32 - 1)) for _ in range(n)]
    strings = [
        random_valid_string(w.graph, w.num_machines, s) for s in seeds
    ]
    return w, strings


def _zero_transfers(w: Workload) -> Workload:
    tr = TransferTimeMatrix(
        np.zeros((num_pairs(w.num_machines), w.num_data_items)),
        num_machines=w.num_machines,
    )
    return Workload(w.graph, w.system, w.exec_times, tr)


class TestJitBitIdenticalToNumPy:
    @given(workload_batches())
    @settings(max_examples=120, deadline=None)
    def test_plain_matches_numpy_kernel(self, case):
        w, strings = case
        got = JitBatchSimulator(w).string_makespans(strings)
        want = BatchSimulator(w).string_makespans(strings)
        assert got.tolist() == want.tolist()  # bit-identical, no tolerance

    @given(workload_batches())
    @settings(max_examples=120, deadline=None)
    def test_nic_matches_numpy_kernel(self, case):
        w, strings = case
        got = JitContentionBatchSimulator(w).string_makespans(strings)
        want = ContentionBatchSimulator(w).string_makespans(strings)
        assert got.tolist() == want.tolist()

    @given(workload_batches())
    @settings(max_examples=40, deadline=None)
    def test_nic_matches_scalar_simulator(self, case):
        """Directly against the scalar walk, skipping the NumPy hop."""
        w, strings = case
        scalar = make_simulator(w, "nic")
        got = JitContentionBatchSimulator(w).string_makespans(strings)
        assert got.tolist() == [
            scalar.string_makespan(s) for s in strings
        ]


class TestJitDegradation:
    @given(workload_batches())
    @settings(max_examples=40, deadline=None)
    def test_zero_transfers_collapse_to_plain_walk(self, case):
        """With nothing to serialise the NIC walk equals the plain one."""
        w, strings = case
        wz = _zero_transfers(w)
        nic = JitContentionBatchSimulator(wz).string_makespans(strings)
        plain = JitBatchSimulator(wz).string_makespans(strings)
        scalar = Simulator(wz)
        assert nic.tolist() == plain.tolist()
        assert nic.tolist() == [scalar.string_makespan(s) for s in strings]


class TestJitChunkingAndEdges:
    @given(workload_batches(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_invisible(self, case, chunk):
        w, strings = case
        full = JitBatchSimulator(w).string_makespans(strings)
        saved = JitBatchSimulator.chunk_size
        try:
            JitBatchSimulator.chunk_size = chunk
            chunked = JitBatchSimulator(w).string_makespans(strings)
        finally:
            JitBatchSimulator.chunk_size = saved
        assert chunked.tolist() == full.tolist()

    @given(workloads(max_tasks=6, max_machines=3))
    @settings(max_examples=20, deadline=None)
    def test_empty_batch(self, w):
        for cls in (JitBatchSimulator, JitContentionBatchSimulator):
            out = cls(w).string_makespans([])
            assert out.shape == (0,)

    @given(
        workloads(min_tasks=1, max_tasks=1, max_machines=3),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_single_task_workload(self, w, seed):
        s = random_valid_string(w.graph, w.num_machines, seed)
        scalar = Simulator(w)
        for cls in (JitBatchSimulator, JitContentionBatchSimulator):
            got = cls(w).string_makespans([s])
            assert got.tolist() == [scalar.string_makespan(s)]


class TestForcedFallback:
    @given(workload_batches())
    @settings(max_examples=25, deadline=None)
    def test_numpy_pin_is_equivalent(self, case):
        """``REPRO_KERNEL=numpy`` selects the NumPy tier and scores
        batches bit-identically to the JIT classes run directly."""
        w, strings = case
        saved = os.environ.get("REPRO_KERNEL")
        os.environ["REPRO_KERNEL"] = "numpy"
        try:
            for network, jit_cls in (
                ("contention-free", JitBatchSimulator),
                ("nic", JitContentionBatchSimulator),
            ):
                backend = make_simulator(w, network, batch=True)
                assert backend.kernel_tier == "vectorized"
                got = backend.batch_string_makespans(strings)
                want = jit_cls(w).string_makespans(strings)
                assert got.tolist() == want.tolist()
        finally:
            if saved is None:
                del os.environ["REPRO_KERNEL"]
            else:
                os.environ["REPRO_KERNEL"] = saved
