"""Property tests: batch evaluation is bit-identical to scalar evaluation.

The contract the whole PR rests on: for any workload and any set of
valid strings, ``BatchSimulator.makespans`` returns *the same floats,
bit for bit* as sequential ``Simulator.makespan`` calls — so wiring
batch scoring into the GA, random search, and SE allocation cannot
change a single decision, trace, or result.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GAConfig, run_ga
from repro.baselines.random_search import random_search
from repro.core import SEConfig, run_se
from repro.schedule import (
    BatchSimulator,
    Simulator,
    make_simulator,
    random_valid_string,
)
from tests.strategies import workloads


@st.composite
def workload_batches(draw, max_batch: int = 6):
    """A workload plus a batch of independent valid strings for it."""
    w = draw(workloads(max_tasks=8, max_machines=4))
    n = draw(st.integers(0, max_batch))
    seeds = [draw(st.integers(0, 2**32 - 1)) for _ in range(n)]
    strings = [
        random_valid_string(w.graph, w.num_machines, s) for s in seeds
    ]
    return w, strings


class TestBatchKernelBitIdentical:
    @given(workload_batches())
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_simulator(self, case):
        w, strings = case
        scalar = Simulator(w)
        kernel = BatchSimulator(w)
        got = kernel.string_makespans(strings)
        want = [scalar.string_makespan(s) for s in strings]
        assert got.tolist() == want  # bit-identical, no tolerance

    @given(workload_batches())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_without_transfer_table(self, case):
        """The big-system fallback path (no tabulated Tr) agrees too."""
        w, strings = case
        scalar = Simulator(w)
        kernel = BatchSimulator(w)
        kernel._trv_table = None  # force the pair_row two-step gather
        got = kernel.string_makespans(strings)
        assert got.tolist() == [scalar.string_makespan(s) for s in strings]

    @given(workload_batches(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_invisible(self, case, chunk):
        """Any chunk size partitions into the same per-row results."""
        w, strings = case
        full = BatchSimulator(w).string_makespans(strings)
        saved = BatchSimulator.chunk_size
        try:
            BatchSimulator.chunk_size = chunk
            chunked = BatchSimulator(w).string_makespans(strings)
        finally:
            BatchSimulator.chunk_size = saved
        assert chunked.tolist() == full.tolist()

    @given(workloads(max_tasks=6, max_machines=3), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_nic_fallback_matches_contention_scalar(self, w, seed):
        wrapped = make_simulator(w, "nic", batch=True)
        scalar = make_simulator(w, "nic")
        s = random_valid_string(w.graph, w.num_machines, seed)
        got = wrapped.batch_string_makespans([s, s])
        want = scalar.string_makespan(s)
        assert got.tolist() == [want, want]


class TestEnginesUnchangedByBatching:
    @given(
        workloads(min_tasks=2, max_tasks=7, max_machines=3),
        st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_se_trajectory_identical(self, w, seed):
        base = dict(seed=seed, max_iterations=4)
        delta = run_se(w, SEConfig(probe_evaluation="delta", **base))
        batch = run_se(w, SEConfig(probe_evaluation="batch", **base))
        assert delta.best_makespan == batch.best_makespan
        assert delta.best_string == batch.best_string
        assert (
            delta.trace.current_makespans() == batch.trace.current_makespans()
        )
        assert delta.evaluations == batch.evaluations

    @given(
        workloads(min_tasks=2, max_tasks=7, max_machines=3),
        st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_ga_results_identical(self, w, seed):
        base = dict(
            seed=seed,
            max_generations=3,
            population_size=8,
            stall_generations=None,
        )
        batch = run_ga(w, GAConfig(batch_fitness=True, **base))
        scalar = run_ga(
            w,
            GAConfig(
                batch_fitness=False, incremental_evaluation=False, **base
            ),
        )
        assert batch.best_makespan == scalar.best_makespan
        assert batch.best_string == scalar.best_string
        assert (
            batch.trace.current_makespans() == scalar.trace.current_makespans()
        )

    @given(
        workloads(min_tasks=1, max_tasks=6, max_machines=3),
        st.integers(0, 2**16),
        st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_search_identical(self, w, seed, samples):
        batch = random_search(w, samples=samples, seed=seed)
        scalar = random_search(w, samples=samples, seed=seed, batch_size=1)
        assert batch.makespan == scalar.makespan
        assert batch.string == scalar.string
        assert batch.evaluations == scalar.evaluations
