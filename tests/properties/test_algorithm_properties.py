"""Property-based tests over the SE engine, GA and baselines.

Runs are tiny (few iterations, small graphs) — the point is that the
structural invariants hold on *arbitrary* valid inputs, not performance.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GAConfig,
    GeneticAlgorithm,
    heft,
    max_min,
    min_min,
    olb,
)
from repro.baselines.ga.chromosome import is_valid_chromosome, random_chromosome
from repro.baselines.ga.operators import (
    matching_crossover,
    scheduling_crossover,
    scheduling_mutation,
)
from repro.core import SEConfig, SimulatedEvolution
from repro.core.goodness import GoodnessEvaluator, optimal_finish_times
from repro.schedule import Simulator, is_valid_for, verify_schedule
from repro.schedule.operations import random_valid_string
from tests.strategies import workloads

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@slow
@given(workloads(), st.integers(0, 2**16))
def test_se_produces_valid_verified_best(w, seed):
    res = SimulatedEvolution(SEConfig(seed=seed, max_iterations=3)).run(w)
    assert is_valid_for(res.best_string, w.graph)
    verify_schedule(w, res.best_schedule)


@slow
@given(workloads(), st.integers(0, 2**16))
def test_se_best_never_worse_than_any_current(w, seed):
    res = SimulatedEvolution(SEConfig(seed=seed, max_iterations=4)).run(w)
    for r in res.trace.records:
        assert res.best_makespan <= r.current_makespan + 1e-9


@slow
@given(workloads())
def test_goodness_in_unit_interval_everywhere(w):
    ev = GoodnessEvaluator(w)
    sim = Simulator(w)
    for seed in range(3):
        s = random_valid_string(w.graph, w.num_machines, seed)
        g = ev.goodness(sim.finish_times(s))
        assert np.all((0.0 <= g) & (g <= 1.0))


@slow
@given(workloads())
def test_optimal_finish_positive_and_monotone_along_edges(w):
    o = optimal_finish_times(w)
    assert np.all(o > 0)
    for d in w.graph.data_items:
        # a consumer's optimistic finish strictly exceeds its producer's
        assert o[d.consumer] > o[d.producer]


@slow
@given(workloads(), st.integers(0, 2**16))
def test_ga_produces_valid_verified_best(w, seed):
    cfg = GAConfig(
        seed=seed,
        population_size=6,
        max_generations=3,
        stall_generations=None,
    )
    res = GeneticAlgorithm(cfg).run(w)
    assert is_valid_for(res.best_string, w.graph)
    verify_schedule(w, res.best_schedule)


@slow
@given(workloads(), st.integers(0, 2**16))
def test_ga_operators_closed_under_validity(w, seed):
    rng = np.random.default_rng(seed)
    a = random_chromosome(w.graph, w.num_machines, rng)
    b = random_chromosome(w.graph, w.num_machines, rng)
    ca, cb = matching_crossover(a, b, rng)
    ca, cb = scheduling_crossover(ca, cb, rng)
    scheduling_mutation(ca, w.graph, w.num_machines, rng)
    for c in (ca, cb, a, b):
        assert is_valid_chromosome(c, w.graph, w.num_machines)


@slow
@given(workloads())
def test_deterministic_baselines_verify_everywhere(w):
    for algo in (heft, min_min, max_min, olb):
        res = algo(w)
        verify_schedule(w, res.schedule)
        assert is_valid_for(res.string, w.graph)


@slow
@given(workloads())
def test_baselines_within_global_bounds(w):
    from repro.schedule.metrics import makespan_lower_bound

    lb = makespan_lower_bound(w)
    worst_exec = float(w.exec_times.values.max(axis=0).sum())
    tr = w.transfer_times.values
    worst = worst_exec + (float(tr.max(axis=0).sum()) if tr.size else 0.0)
    for algo in (heft, min_min, max_min, olb):
        m = algo(w).makespan
        assert lb - 1e-9 <= m <= worst + 1e-9


@slow
@given(workloads(), st.integers(0, 2**16))
def test_se_deterministic_under_seed(w, seed):
    a = SimulatedEvolution(SEConfig(seed=seed, max_iterations=3)).run(w)
    b = SimulatedEvolution(SEConfig(seed=seed, max_iterations=3)).run(w)
    assert a.best_makespan == b.best_makespan
    assert a.best_string == b.best_string


@slow
@given(workloads(), st.integers(0, 2**16))
def test_sa_produces_valid_verified_best(w, seed):
    from repro.optim import SAConfig, SimulatedAnnealing

    res = SimulatedAnnealing(SAConfig(seed=seed, max_iterations=20)).run(w)
    assert is_valid_for(res.best_string, w.graph)
    verify_schedule(w, res.best_schedule)
    assert res.best_makespan <= min(res.trace.current_makespans()) + 1e-9


@slow
@given(workloads(), st.integers(0, 2**16))
def test_tabu_produces_valid_verified_best(w, seed):
    from repro.optim import TabuConfig, TabuSearch

    cfg = TabuConfig(seed=seed, max_iterations=4, neighborhood_size=6)
    res = TabuSearch(cfg).run(w)
    assert is_valid_for(res.best_string, w.graph)
    verify_schedule(w, res.best_schedule)


@slow
@given(workloads(), st.integers(0, 2**16))
def test_sa_and_tabu_deterministic_under_seed(w, seed):
    from repro.optim import SAConfig, SimulatedAnnealing, TabuConfig, TabuSearch

    a = SimulatedAnnealing(SAConfig(seed=seed, max_iterations=15)).run(w)
    b = SimulatedAnnealing(SAConfig(seed=seed, max_iterations=15)).run(w)
    assert a.best_makespan == b.best_makespan
    assert a.best_string == b.best_string
    cfg = TabuConfig(seed=seed, max_iterations=3, neighborhood_size=5)
    ta = TabuSearch(cfg).run(w)
    tb = TabuSearch(cfg).run(w)
    assert ta.best_makespan == tb.best_makespan
    assert ta.best_string == tb.best_string
