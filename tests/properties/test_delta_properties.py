"""Property tests: incremental evaluation is exactly the full evaluation.

``Simulator.evaluate_delta`` recomputes a schedule from the first
perturbed position onward, reusing a :class:`DeltaState` snapshot of the
base string.  These properties pin the contract the SE allocator and the
GA engine rely on: across random sequences of validity-preserving moves,
the incremental makespan is **bit-identical** (``==``, no tolerance) to a
from-scratch evaluation of the same string.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import valid_insertion_range
from tests.strategies import workload_strings


def _random_move(string, graph, rng):
    """One validity-preserving relocate; returns (first, last) changed
    positions — the ``first_changed`` / ``region_end`` pair."""
    task = int(rng.integers(string.num_tasks))
    old_pos = string.position_of(task)
    lo, hi = valid_insertion_range(string, graph, task)
    new_pos = int(rng.integers(lo, hi + 1))
    machine = int(rng.integers(string.num_machines))
    string.relocate(task, new_pos, machine)
    return min(old_pos, new_pos), max(old_pos, new_pos)


@given(workload_strings(), st.integers(0, 2**32 - 1))
@settings(max_examples=60)
def test_delta_equals_full_across_move_sequences(data, move_seed):
    """Bit-identical makespans over a chain of random valid moves,
    re-preparing after each committed move (the SE allocator pattern)."""
    w, s = data
    sim = Simulator(w)
    rng = np.random.default_rng(move_seed)
    state = sim.prepare(s.order, s.machines)
    assert state.makespan == sim.makespan(s.order, s.machines)

    for _ in range(5):
        first, last = _random_move(s, w.graph, rng)
        delta = sim.evaluate_delta(s.order, s.machines, first, state)
        rejoin = sim.evaluate_delta(
            s.order, s.machines, first, state, region_end=last
        )
        full = sim.makespan(s.order, s.machines)
        assert delta == full  # exact, no tolerance
        assert rejoin == full  # the rejoin early-exit is exact too
        state = sim.prepare(s.order, s.machines)  # commit the move


@given(workload_strings(), st.integers(0, 2**32 - 1))
@settings(max_examples=60)
def test_delta_probe_revert_matches_full(data, move_seed):
    """The allocator's probe pattern: many relocate/score/revert cycles
    against one prepared state, without re-preparing in between."""
    w, s = data
    sim = Simulator(w)
    rng = np.random.default_rng(move_seed)
    state = sim.prepare(s.order, s.machines)
    base_pairs = s.pairs()

    for _ in range(8):
        task = int(rng.integers(s.num_tasks))
        orig_pos = s.position_of(task)
        orig_machine = s.machine_of(task)
        lo, hi = valid_insertion_range(s, w.graph, task)
        idx = int(rng.integers(lo, hi + 1))
        machine = int(rng.integers(s.num_machines))
        s.relocate(task, idx, machine)
        first = min(orig_pos, idx)
        last = max(orig_pos, idx)
        full = sim.makespan(s.order, s.machines)
        assert sim.evaluate_delta(s.order, s.machines, first, state) == full
        assert (
            sim.evaluate_delta(
                s.order, s.machines, first, state, region_end=last
            )
            == full
        )
        s.relocate(task, orig_pos, orig_machine)  # revert the probe

    assert s.pairs() == base_pairs  # probes fully reverted


@given(workload_strings())
def test_delta_from_zero_is_full_evaluation(data):
    """first_changed=0 reuses nothing and must equal a full evaluation."""
    w, s = data
    sim = Simulator(w)
    state = sim.prepare(s.order, s.machines)
    assert (
        sim.evaluate_delta(s.order, s.machines, 0, state)
        == sim.makespan(s.order, s.machines)
    )


@given(workload_strings())
def test_delta_past_end_returns_base_makespan(data):
    w, s = data
    sim = Simulator(w)
    state = sim.prepare(s.order, s.machines)
    assert (
        sim.evaluate_delta(s.order, s.machines, s.num_tasks, state)
        == state.makespan
    )


@given(workload_strings())
def test_prepare_matches_evaluate(data):
    """prepare() is a full evaluation: identical Schedule, per-position
    span prefixes consistent with the finish times."""
    w, s = data
    sim = Simulator(w)
    state = sim.prepare(s.order, s.machines)
    sched = sim.evaluate(s)
    assert state.as_schedule() == sched
    k = s.num_tasks
    running = 0.0
    for p in range(k):
        assert state.span_prefix[p] == running
        running = max(running, state.finish[s.order[p]])
    assert state.span_prefix[k] == running == state.makespan


@given(workload_strings(), st.integers(0, 2**32 - 1))
def test_cutoff_never_changes_strictly_better_probes(data, move_seed):
    """With cutoff=c, results < c are exact and results >= c become inf —
    the only contract the allocator's best-probe selection needs."""
    w, s = data
    sim = Simulator(w)
    rng = np.random.default_rng(move_seed)
    state = sim.prepare(s.order, s.machines)
    first, last = _random_move(s, w.graph, rng)
    exact = sim.evaluate_delta(s.order, s.machines, first, state)
    cutoff = state.makespan
    for kwargs in ({}, {"region_end": last}):
        pruned = sim.evaluate_delta(
            s.order, s.machines, first, state, cutoff, **kwargs
        )
        if exact < cutoff:
            assert pruned == exact
        else:
            assert pruned == float("inf")


def test_delta_reuses_prefix_state_paper_scale():
    """Sanity on a non-toy instance: 60 tasks, 8 machines, many probes."""
    from repro.workloads import WorkloadSpec, build_workload

    w = build_workload(WorkloadSpec(num_tasks=60, num_machines=8, seed=4))
    sim = Simulator(w)
    s = random_valid_string(w.graph, w.num_machines, 9)
    rng = np.random.default_rng(123)
    state = sim.prepare(s.order, s.machines)
    for _ in range(50):
        first, last = _random_move(s, w.graph, rng)
        full = sim.makespan(s.order, s.machines)
        assert sim.evaluate_delta(s.order, s.machines, first, state) == full
        assert (
            sim.evaluate_delta(
                s.order, s.machines, first, state, region_end=last
            )
            == full
        )
        state = sim.prepare(s.order, s.machines)
