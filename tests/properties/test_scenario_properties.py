"""Property tests pinning the stochastic tier's core contracts.

* **S=1 identity** — a single deterministic scenario scores any batch
  of valid strings **bit-identically** (``==``, no tolerance) to the
  plain deterministic batch path, on both network models.  This is the
  "risk tier changes nothing until you ask for noise" guarantee.
* **Reducer sanity** — for any sample vector, every reduction lies in
  ``[min, max]`` and the quantile is monotone in ``q``.
* **Determinism** — resampling with the same arguments reproduces the
  scenario tensors exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import EvaluationService
from repro.optim.objective import ScenarioObjective
from repro.schedule import random_valid_string
from repro.stochastic import ScenarioEvaluator, sample_scenarios
from tests.strategies import workloads

NETWORKS = ("contention-free", "nic")


@settings(deadline=None, max_examples=25)
@given(w=workloads(), seed=st.integers(0, 2**16), data=st.data())
def test_single_deterministic_scenario_is_bit_identical(w, seed, data):
    network = data.draw(st.sampled_from(NETWORKS))
    n = data.draw(st.integers(1, 4))
    rng = np.random.default_rng(seed)
    strings = [
        random_valid_string(w.graph, w.num_machines, rng) for _ in range(n)
    ]
    ev = ScenarioEvaluator(
        sample_scenarios(w, "deterministic", scenarios=1), network=network
    )
    plain = EvaluationService(
        w, network, prefer_batch=True
    ).batch_string_makespans(strings)
    assert ev.string_matrix(strings)[0].tolist() == list(plain)


@settings(deadline=None, max_examples=50)
@given(
    xs=st.lists(
        st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=40,
    ),
    q=st.floats(0.01, 1.0),
)
def test_reductions_lie_in_the_sample_range(xs, q):
    # averaging reducers (mean, cvar) can land 1 ulp outside the range
    tol = 4 * np.spacing(max(xs))
    lo, hi = min(xs) - tol, max(xs) + tol
    for obj in (
        ScenarioObjective("mean"),
        ScenarioObjective("quantile", q=q),
        ScenarioObjective("cvar", q=min(q, 0.99)),
    ):
        v = obj.reduce(xs)
        assert lo <= v <= hi
    # CVaR dominates the matching quantile (tail mean >= tail floor)
    qq = min(q, 0.99)
    cvar = ScenarioObjective("cvar", q=qq).reduce(xs)
    var = ScenarioObjective("quantile", q=max(qq, 0.01)).reduce(xs)
    assert cvar >= var - tol


@settings(deadline=None, max_examples=50)
@given(
    xs=st.lists(
        st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=30,
    ),
    qs=st.tuples(st.floats(0.01, 1.0), st.floats(0.01, 1.0)),
)
def test_quantile_is_monotone_in_q(xs, qs):
    lo_q, hi_q = sorted(qs)
    lo = ScenarioObjective("quantile", q=lo_q).reduce(xs)
    hi = ScenarioObjective("quantile", q=hi_q).reduce(xs)
    assert lo <= hi


@settings(deadline=None, max_examples=20)
@given(
    w=workloads(),
    seed=st.integers(0, 2**32),
    dist=st.sampled_from(
        ("uniform:0.4", "lognormal:0.5", "empirical:1,2,0.5")
    ),
    S=st.integers(1, 6),
)
def test_resampling_reproduces_tensors_exactly(w, seed, dist, S):
    a = sample_scenarios(w, dist, scenarios=S, seed=seed)
    b = sample_scenarios(w, dist, scenarios=S, seed=seed)
    assert (a.exec_tensor == b.exec_tensor).all()
    ta, tb = a.transfer_tensor, b.transfer_tensor
    assert (ta is None) == (tb is None)
    if ta is not None:
        assert (ta == tb).all()
