"""Property tests for the NIC-contention simulator backend.

Two contracts pin the backend:

* **Incremental parity** — ``ContentionSimulator.evaluate_delta`` is
  bit-identical (``==``, no tolerance) to a full contention evaluation
  of the same string, including probes that reassign machines (which,
  under eager pushes, can dirty the NIC timeline of *prefix* producers —
  the subtle case the backend's producer-floor clamp exists for).
* **Degradation** — with all transfer times zero the contention model
  collapses exactly to the paper's contention-free model: identical
  start/finish arrays and makespan, not merely approximately equal.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.contention import ContentionSimulator
from repro.model import TransferTimeMatrix, Workload, num_pairs
from repro.schedule.simulator import Simulator
from repro.schedule.valid_range import valid_insertion_range
from tests.strategies import workload_strings


def _random_move(string, graph, rng):
    """One validity-preserving relocate (possibly changing machine);
    returns the ``first_changed`` position the allocator would pass."""
    task = int(rng.integers(string.num_tasks))
    old_pos = string.position_of(task)
    lo, hi = valid_insertion_range(string, graph, task)
    new_pos = int(rng.integers(lo, hi + 1))
    machine = int(rng.integers(string.num_machines))
    string.relocate(task, new_pos, machine)
    return min(old_pos, new_pos), max(old_pos, new_pos)


def _zero_transfers(w: Workload) -> Workload:
    tr = TransferTimeMatrix(
        np.zeros((num_pairs(w.num_machines), w.num_data_items)),
        num_machines=w.num_machines,
    )
    return Workload(w.graph, w.system, w.exec_times, tr)


class TestIncrementalParity:
    @given(workload_strings(), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_delta_equals_full_across_move_sequences(self, data, move_seed):
        """Bit-identical makespans over a chain of random valid moves,
        re-preparing after each committed move (the SE allocator
        pattern)."""
        w, s = data
        sim = ContentionSimulator(w)
        rng = np.random.default_rng(move_seed)
        state = sim.prepare(s.order, s.machines)
        assert state.makespan == sim.makespan(s.order, s.machines)

        for _ in range(5):
            first, last = _random_move(s, w.graph, rng)
            delta = sim.evaluate_delta(s.order, s.machines, first, state)
            parity = sim.evaluate_delta(
                s.order, s.machines, first, state, region_end=last
            )
            full = sim.makespan(s.order, s.machines)
            assert delta == full  # exact, no tolerance
            assert parity == full  # region_end must not change anything
            state = sim.prepare(s.order, s.machines)  # commit the move

    @given(workload_strings(), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_delta_probe_revert_matches_full(self, data, move_seed):
        """The allocator's probe pattern: many relocate/score/revert
        cycles against one prepared state.  Machine reassignments are
        drawn freely, so probes routinely consume prefix-produced items
        on new machines — exercising the producer-floor restart."""
        w, s = data
        sim = ContentionSimulator(w)
        rng = np.random.default_rng(move_seed)
        state = sim.prepare(s.order, s.machines)
        base_pairs = s.pairs()

        for _ in range(8):
            task = int(rng.integers(s.num_tasks))
            orig_pos = s.position_of(task)
            orig_machine = s.machine_of(task)
            lo, hi = valid_insertion_range(s, w.graph, task)
            idx = int(rng.integers(lo, hi + 1))
            machine = int(rng.integers(s.num_machines))
            s.relocate(task, idx, machine)
            first = min(orig_pos, idx)
            full = sim.makespan(s.order, s.machines)
            assert (
                sim.evaluate_delta(s.order, s.machines, first, state) == full
            )
            s.relocate(task, orig_pos, orig_machine)  # revert the probe

        assert s.pairs() == base_pairs  # probes fully reverted

    @given(workload_strings())
    def test_delta_from_zero_is_full_evaluation(self, data):
        w, s = data
        sim = ContentionSimulator(w)
        state = sim.prepare(s.order, s.machines)
        assert sim.evaluate_delta(
            s.order, s.machines, 0, state
        ) == sim.makespan(s.order, s.machines)

    @given(workload_strings())
    def test_delta_past_end_returns_base_makespan(self, data):
        w, s = data
        sim = ContentionSimulator(w)
        state = sim.prepare(s.order, s.machines)
        assert (
            sim.evaluate_delta(s.order, s.machines, s.num_tasks, state)
            == state.makespan
        )

    @given(workload_strings())
    def test_prepare_matches_evaluate(self, data):
        """prepare() is a full evaluation: identical Schedule, span
        prefixes consistent with the finish times."""
        w, s = data
        sim = ContentionSimulator(w)
        state = sim.prepare(s.order, s.machines)
        sched = sim.evaluate(s)
        assert state.as_schedule() == sched.schedule
        k = s.num_tasks
        running = 0.0
        for p in range(k):
            assert state.span_prefix[p] == running
            running = max(running, state.finish[s.order[p]])
        assert state.span_prefix[k] == running == state.makespan

    @given(workload_strings(), st.integers(0, 2**32 - 1))
    def test_cutoff_never_changes_strictly_better_probes(
        self, data, move_seed
    ):
        """With cutoff=c, results < c are exact and results >= c become
        inf — the only contract the allocator's selection needs."""
        w, s = data
        sim = ContentionSimulator(w)
        rng = np.random.default_rng(move_seed)
        state = sim.prepare(s.order, s.machines)
        first, _last = _random_move(s, w.graph, rng)
        exact = sim.evaluate_delta(s.order, s.machines, first, state)
        cutoff = state.makespan
        pruned = sim.evaluate_delta(
            s.order, s.machines, first, state, cutoff
        )
        if exact < cutoff:
            assert pruned == exact
        else:
            assert pruned == float("inf")


class TestDegradation:
    @given(workload_strings())
    def test_zero_transfers_collapse_to_contention_free(self, data):
        """With every transfer time zero there is nothing to serialise:
        the NIC model's start/finish/makespan equal the paper model's
        **exactly** (bitwise, no tolerance)."""
        w, s = data
        wz = _zero_transfers(w)
        contended = ContentionSimulator(wz).evaluate(s)
        free = Simulator(wz).evaluate(s)
        assert contended.start == free.start
        assert contended.finish == free.finish
        assert contended.makespan == free.makespan

    @given(workload_strings(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_zero_transfer_deltas_collapse_too(self, data, move_seed):
        """The incremental tiers agree with each other as well when
        transfers are free."""
        w, s = data
        wz = _zero_transfers(w)
        nic = ContentionSimulator(wz)
        ref = Simulator(wz)
        rng = np.random.default_rng(move_seed)
        nic_state = nic.prepare(s.order, s.machines)
        ref_state = ref.prepare(s.order, s.machines)
        for _ in range(4):
            first, last = _random_move(s, w.graph, rng)
            assert nic.evaluate_delta(
                s.order, s.machines, first, nic_state
            ) == ref.evaluate_delta(
                s.order, s.machines, first, ref_state, region_end=last
            )
            nic_state = nic.prepare(s.order, s.machines)
            ref_state = ref.prepare(s.order, s.machines)


class TestPushOrder:
    @given(workload_strings())
    def test_transfers_pushed_in_item_index_order(self, data):
        """The documented NIC discipline: each subtask's cross-machine
        output items enter its machine's link in ascending item index."""
        w, s = data
        res = ContentionSimulator(w).evaluate(s)
        by_producer: dict[int, list[int]] = {}
        for t in res.transfers:
            by_producer.setdefault(t.producer, []).append(t.item)
        for items in by_producer.values():
            assert items == sorted(items)

    @given(workload_strings())
    def test_transfer_records_match_arrival_semantics(self, data):
        """Each transfer starts at max(producer finish, previous NIC
        use) and the consumer never starts before it arrives."""
        w, s = data
        res = ContentionSimulator(w).evaluate(s)
        sched = res.schedule
        for t in res.transfers:
            assert t.start >= sched.finish[t.producer] - 1e-9
            assert sched.start[t.consumer] >= t.finish - 1e-9
