"""Property tests for the online scheduling service.

Four contracts pin :class:`repro.online.DynamicSimulator`:

* **Conservation** — every subtask of every arrived job completes
  exactly once, and every job emits exactly one ``job_done``, under any
  arrival pattern, backend, policy and re-optimisation setting (stale
  events from rolled-back commitments must never double-fire).
* **Machine exclusivity** — committed schedules never overlap on a
  machine, *across jobs*, even though each job was scheduled against a
  snapshot of the pool.
* **Event-time monotonicity** — the logged event stream never goes
  backwards in time, and same-instant ordering follows the pinned
  priorities (completions before arrivals before re-optimisation).
* **Offline equivalence** — a single job arriving at ``t = 0`` with no
  re-optimisation reproduces the offline baseline schedule
  **bit-identically** (``==`` on every start/finish, no tolerance) on
  both the contention-free and the NIC backends.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online import DynamicSimulator, JobArrival, JobStream, ReoptConfig
from repro.schedule.backend import make_simulator
from repro.online.policies import DISPATCH_POLICIES, dispatch
from repro.workloads.presets import WorkloadSpec, build_workload
from tests.strategies import arrival_traces

NETWORKS = ("contention-free", "nic")
POLICIES = tuple(sorted(DISPATCH_POLICIES))

#: Small optional reopt configs (None = disabled) exercised by the
#: stateful properties; tiny budgets keep examples fast while still
#: driving the rollback/epoch machinery.
REOPTS = (
    None,
    ReoptConfig(interval=25.0, engine="tabu", max_iterations=4),
    ReoptConfig(interval=40.0, engine="sa", max_iterations=30),
)

service_params = st.tuples(
    st.sampled_from(NETWORKS),
    st.sampled_from(POLICIES),
    st.sampled_from(REOPTS),
    st.integers(0, 2**31 - 1),
)


class TestConservation:
    @given(arrival_traces(), service_params)
    @settings(max_examples=40, deadline=None)
    def test_every_task_completes_exactly_once(self, stream, params):
        network, policy, reopt, seed = params
        result = DynamicSimulator(
            stream, network=network, policy=policy, reopt=reopt, seed=seed
        ).run()

        done: dict[str, dict[int, int]] = {}
        job_done: dict[str, int] = {}
        for e in result.events:
            if e["type"] == "task_done":
                done.setdefault(e["job"], {})
                done[e["job"]][e["task"]] = (
                    done[e["job"]].get(e["task"], 0) + 1
                )
            elif e["type"] == "job_done":
                job_done[e["job"]] = job_done.get(e["job"], 0) + 1

        for arr in stream:
            k = arr.spec.num_tasks
            counts = done.get(arr.job_id, {})
            assert sorted(counts) == list(range(k)), (
                f"job {arr.job_id}: completed tasks {sorted(counts)} != "
                f"expected 0..{k - 1}"
            )
            assert all(c == 1 for c in counts.values()), (
                f"job {arr.job_id}: some task completed more than once"
            )
            assert job_done.get(arr.job_id) == 1
        assert len(result.records) == len(stream)


class TestMachineExclusivity:
    @given(arrival_traces(min_jobs=1), service_params)
    @settings(max_examples=40, deadline=None)
    def test_no_cross_job_overlap_per_machine(self, stream, params):
        network, policy, reopt, seed = params
        result = DynamicSimulator(
            stream, network=network, policy=policy, reopt=reopt, seed=seed
        ).run()

        spans: dict[int, list[tuple[float, float, str]]] = {}
        for job in result.jobs:
            sched = job.schedule
            for t in sched.order:
                m = sched.machine_of[t]
                spans.setdefault(m, []).append(
                    (sched.start[t], sched.finish[t], job.job_id)
                )
        for m, ss in spans.items():
            ss.sort()
            for (s0, f0, j0), (s1, f1, j1) in zip(ss, ss[1:]):
                assert s1 >= f0 - 1e-9, (
                    f"machine {m}: [{s0:.6f},{f0:.6f}] of {j0} overlaps "
                    f"[{s1:.6f},{f1:.6f}] of {j1}"
                )


class TestEventMonotonicity:
    #: pinned same-instant ordering (see simulator module docstring)
    _RANK = {
        "task_done": 0,
        "job_done": 1,
        "arrival": 2,
        "dispatch": 2,
        "reopt": 3,
    }

    @given(arrival_traces(), service_params)
    @settings(max_examples=40, deadline=None)
    def test_log_times_never_go_backwards(self, stream, params):
        network, policy, reopt, seed = params
        result = DynamicSimulator(
            stream, network=network, policy=policy, reopt=reopt, seed=seed
        ).run()
        keys = [(e["t"], self._RANK[e["type"]]) for e in result.events]
        assert keys == sorted(keys), "event log is not time-ordered"

    @given(arrival_traces(min_jobs=1), service_params)
    @settings(max_examples=25, deadline=None)
    def test_no_event_precedes_its_jobs_arrival(self, stream, params):
        network, policy, reopt, seed = params
        result = DynamicSimulator(
            stream, network=network, policy=policy, reopt=reopt, seed=seed
        ).run()
        t_arrival = {a.job_id: a.t_arrival for a in stream}
        for e in result.events:
            if "job" in e:
                assert e["t"] >= t_arrival[e["job"]] - 0.0, (
                    f"{e['type']} for {e['job']} at {e['t']} precedes "
                    f"its arrival at {t_arrival[e['job']]}"
                )


class TestOfflineEquivalence:
    @given(
        st.sampled_from(NETWORKS),
        st.sampled_from(POLICIES),
        st.integers(1, 10),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_job_at_t0_matches_offline_bit_identically(
        self, network, policy, num_tasks, num_machines, seed
    ):
        spec = WorkloadSpec(
            num_tasks=num_tasks,
            num_machines=num_machines,
            seed=seed,
        )
        stream = JobStream([JobArrival("solo", spec)])
        result = DynamicSimulator(
            stream, network=network, policy=policy
        ).run()
        assert len(result.jobs) == 1
        online = result.jobs[0]

        workload = build_workload(spec)
        offline = dispatch(policy, workload, network)
        assert online.string == offline.string
        # bit-identical, not approximately equal
        assert online.schedule.start == offline.schedule.start
        assert online.schedule.finish == offline.schedule.finish
        assert online.schedule.makespan == offline.makespan
        sim = make_simulator(workload, network)
        assert online.schedule.makespan == sim.makespan(
            offline.string.order, offline.string.machines
        )
        assert result.records[0].t_completed == offline.makespan
