"""Property-based tests: string encoding, valid ranges, operators.

The central closure invariant of the whole library: **every operator
keeps a valid string valid**.  SE allocation, GA mutation/crossover and
the initial-solution shuffles all rely on it.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.schedule.encoding import is_valid_for
from repro.schedule.operations import (
    random_reassign,
    random_topological_order,
    random_valid_move,
)
from repro.schedule.valid_range import (
    machine_slot_indices,
    valid_insertion_range,
)
from tests.strategies import graph_strings, task_graphs


@given(graph_strings())
def test_random_valid_string_is_valid(data):
    graph, l, s = data
    assert is_valid_for(s, graph)


@given(task_graphs(), st.integers(0, 2**32 - 1))
def test_random_topological_order_valid(graph, seed):
    rng = np.random.default_rng(seed)
    assert graph.is_valid_order(random_topological_order(graph, rng))


@given(graph_strings(), st.integers(0, 2**32 - 1), st.integers(1, 30))
def test_moves_preserve_validity(data, seed, n_moves):
    graph, l, s = data
    rng = np.random.default_rng(seed)
    for _ in range(n_moves):
        random_valid_move(s, graph, rng)
        assert is_valid_for(s, graph)


@given(graph_strings(), st.integers(0, 2**32 - 1))
def test_reassign_preserves_validity(data, seed):
    graph, l, s = data
    rng = np.random.default_rng(seed)
    for _ in range(5):
        random_reassign(s, rng)
        assert is_valid_for(s, graph)


@given(graph_strings())
def test_positions_consistent_with_order(data):
    graph, l, s = data
    for pos, t in enumerate(s.order):
        assert s.position_of(t) == pos
        assert s.task_at(pos) == t


@given(graph_strings())
def test_machine_sequences_partition_tasks(data):
    graph, l, s = data
    all_tasks = [t for m in range(l) for t in s.machine_sequence(m)]
    assert sorted(all_tasks) == list(range(graph.num_tasks))


@given(graph_strings())
def test_valid_range_brute_force(data):
    """The analytic window equals the brute-force set of valid moves."""
    graph, l, s = data
    k = graph.num_tasks
    for task in range(k):
        lo, hi = valid_insertion_range(s, graph, task)
        assert 0 <= lo <= hi <= k - 1
        assert lo <= s.position_of(task) <= hi
        for idx in range(k):
            probe = s.copy()
            probe.move(task, idx)
            assert graph.is_valid_order(probe.order) == (lo <= idx <= hi)


@given(graph_strings())
def test_move_within_range_preserves_validity(data):
    graph, l, s = data
    for task in range(graph.num_tasks):
        lo, hi = valid_insertion_range(s, graph, task)
        for idx in (lo, hi, (lo + hi) // 2):
            probe = s.copy()
            probe.move(task, idx)
            assert is_valid_for(probe, graph)


@given(graph_strings())
def test_slot_indices_reach_exactly_all_distinct_schedules(data):
    """Per-machine slot enumeration reaches the same set of per-machine
    orders as enumerating every valid insertion index (ABL-SLOT)."""
    graph, l, s = data
    for task in range(graph.num_tasks):
        lo, hi = valid_insertion_range(s, graph, task)
        for machine in range(l):
            def orders_from(indices):
                out = set()
                for idx in indices:
                    probe = s.copy()
                    probe.relocate(task, idx, machine)
                    out.add(
                        tuple(
                            tuple(probe.machine_sequence(m)) for m in range(l)
                        )
                    )
                return out

            slots = machine_slot_indices(s, graph, task, machine)
            assert set(slots) <= set(range(lo, hi + 1))
            assert orders_from(slots) == orders_from(range(lo, hi + 1))


@given(graph_strings(), st.integers(0, 2**32 - 1))
def test_move_and_back_is_identity(data, seed):
    graph, l, s = data
    rng = np.random.default_rng(seed)
    task = int(rng.integers(graph.num_tasks))
    before = s.pairs()
    orig = s.position_of(task)
    lo, hi = valid_insertion_range(s, graph, task)
    s.move(task, int(rng.integers(lo, hi + 1)))
    s.move(task, orig)
    assert s.pairs() == before


@given(graph_strings())
def test_copy_equality_and_independence(data):
    graph, l, s = data
    c = s.copy()
    assert c == s
    if graph.num_tasks >= 2:
        c.move(s.order[0], 1)
        c.assign(0, (c.machine_of(0) + 1) % l if l > 1 else 0)
    # original untouched regardless of what happened to the copy
    assert s.position_of(s.order[0]) == 0
