"""Property-based tests of the schedule simulator and its invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.schedule.metrics import makespan_lower_bound
from repro.schedule.operations import random_valid_string
from repro.schedule.simulator import Simulator
from repro.schedule.timeline import Timeline, verify_schedule
from tests.strategies import workload_strings, workloads


@given(workload_strings())
def test_every_valid_string_yields_verified_schedule(data):
    """The simulator's output always satisfies the full constraint set
    (machine exclusivity, data arrival, durations, makespan)."""
    w, s = data
    verify_schedule(w, Simulator(w).evaluate(s))


@given(workload_strings())
def test_makespan_is_max_finish(data):
    w, s = data
    sched = Simulator(w).evaluate(s)
    assert sched.makespan == max(sched.finish)


@given(workload_strings())
def test_makespan_at_least_lower_bound(data):
    w, s = data
    sched = Simulator(w).evaluate(s)
    assert sched.makespan >= makespan_lower_bound(w) - 1e-9


@given(workload_strings())
def test_makespan_at_most_serial_plus_comm(data):
    """Upper bound: everything serialised on worst machines plus every
    transfer paid at its worst rate."""
    w, s = data
    sched = Simulator(w).evaluate(s)
    worst_exec = float(w.exec_times.values.max(axis=0).sum())
    tr = w.transfer_times.values
    worst_comm = float(tr.max(axis=0).sum()) if tr.size else 0.0
    assert sched.makespan <= worst_exec + worst_comm + 1e-9


@given(workload_strings())
def test_fast_and_full_paths_agree(data):
    w, s = data
    sim = Simulator(w)
    assert sim.makespan(s.order, s.machines) == sim.evaluate(s).makespan


@given(workload_strings())
def test_evaluation_is_pure(data):
    """Evaluating twice gives identical results and leaves the string
    untouched (no hidden state)."""
    w, s = data
    sim = Simulator(w)
    before = s.pairs()
    a = sim.evaluate(s)
    b = sim.evaluate(s)
    assert a == b
    assert s.pairs() == before


@given(workload_strings())
def test_busy_plus_idle_is_makespan(data):
    w, s = data
    sched = Simulator(w).evaluate(s)
    tl = Timeline(sched, w.num_machines)
    for m in range(w.num_machines):
        assert abs(tl.busy_time(m) + tl.idle_time(m) - sched.makespan) < 1e-9


@given(workloads(), st.integers(0, 2**32 - 1))
def test_schedule_independent_of_interleaving(w, seed):
    """Two strings with identical matching and identical per-machine
    orders have identical schedules, regardless of how the machines'
    segments interleave in the string — the equivalence the allocation
    slot optimisation rests on."""
    rng = np.random.default_rng(seed)
    s = random_valid_string(w.graph, w.num_machines, rng)
    sim = Simulator(w)
    base = sim.evaluate(s)

    # produce a different interleaving with the same per-machine orders:
    # stable-sort the string by (level) keeping relative order (level sort
    # preserves per-machine relative order only if it is stable and
    # level-compatible; instead we use the canonical merge below)
    per_machine = [s.machine_sequence(m) for m in range(w.num_machines)]
    # canonical merge: repeatedly emit the ready task whose machine queue
    # head has the smallest id — a (possibly) different topological merge
    heads = [0] * w.num_machines
    merged: list[int] = []
    placed: set[int] = set()
    while len(merged) < w.graph.num_tasks:
        progressed = False
        for m in sorted(range(w.num_machines)):
            if heads[m] < len(per_machine[m]):
                t = per_machine[m][heads[m]]
                if all(p in placed for p in w.graph.predecessors(t)):
                    merged.append(t)
                    placed.add(t)
                    heads[m] += 1
                    progressed = True
        assert progressed, "merge must always progress for a valid base"
    from repro.schedule.encoding import ScheduleString

    s2 = ScheduleString(merged, list(s.machines), w.num_machines)
    other = sim.evaluate(s2)
    assert other.start == base.start
    assert other.finish == base.finish
    assert other.makespan == base.makespan


@given(workload_strings())
def test_single_machine_makespan_is_serial_sum(data):
    w, s = data
    if w.num_machines != 1:
        return
    sched = Simulator(w).evaluate(s)
    assert abs(sched.makespan - float(w.exec_times.values.sum())) < 1e-9
