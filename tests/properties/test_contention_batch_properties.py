"""Property tests: the NIC batch kernel is bit-identical to the scalar.

The contract the vectorized-contention tentpole rests on: for any
workload and any set of valid strings,
``ContentionBatchSimulator.makespans`` returns *the same floats, bit
for bit*, as sequential ``ContentionSimulator.makespan`` calls — so
flipping the GA, tabu and random search onto the kernel under
``network="nic"`` cannot change a single decision, trace, or result.

Also pinned here:

* **degradation** — with every transfer time zero the NIC kernel
  collapses exactly to the contention-free ``BatchSimulator`` (and both
  to the scalar ``Simulator``), mirroring the scalar-model property in
  ``test_contention_backend_properties.py``;
* **chunking** — any ``chunk_size`` partitions a batch into the same
  per-row results;
* **engines unchanged** — whole GA / random-search / tabu runs under
  ``"nic"`` are identical with the kernel and with the forced scalar
  path, including their ``evaluations`` accounting.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GAConfig, run_ga
from repro.baselines.random_search import random_search
from repro.extensions.contention import ContentionSimulator
from repro.model import TransferTimeMatrix, Workload, num_pairs
from repro.schedule import BatchSimulator, random_valid_string
from repro.schedule.vectorized_contention import ContentionBatchSimulator
from tests.strategies import workloads


@st.composite
def workload_batches(draw, max_batch: int = 6):
    """A workload plus a batch of independent valid strings for it."""
    w = draw(workloads(max_tasks=8, max_machines=4))
    n = draw(st.integers(0, max_batch))
    seeds = [draw(st.integers(0, 2**32 - 1)) for _ in range(n)]
    strings = [
        random_valid_string(w.graph, w.num_machines, s) for s in seeds
    ]
    return w, strings


def _zero_transfers(w: Workload) -> Workload:
    tr = TransferTimeMatrix(
        np.zeros((num_pairs(w.num_machines), w.num_data_items)),
        num_machines=w.num_machines,
    )
    return Workload(w.graph, w.system, w.exec_times, tr)


class TestContentionKernelBitIdentical:
    @given(workload_batches())
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_contention_simulator(self, case):
        w, strings = case
        scalar = ContentionSimulator(w)
        kernel = ContentionBatchSimulator(w)
        got = kernel.string_makespans(strings)
        want = [scalar.string_makespan(s) for s in strings]
        assert got.tolist() == want  # bit-identical, no tolerance

    @given(workload_batches())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_without_transfer_table(self, case):
        """The big-system fallback path (no tabulated Tr) agrees too."""
        w, strings = case
        scalar = ContentionSimulator(w)
        kernel = ContentionBatchSimulator(w)
        kernel._trv_table = None  # force the pair_row two-step gather
        got = kernel.string_makespans(strings)
        assert got.tolist() == [scalar.string_makespan(s) for s in strings]

    @given(workload_batches(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_invisible(self, case, chunk):
        """Any chunk size partitions into the same per-row results."""
        w, strings = case
        full = ContentionBatchSimulator(w).string_makespans(strings)
        saved = ContentionBatchSimulator.chunk_size
        try:
            ContentionBatchSimulator.chunk_size = chunk
            chunked = ContentionBatchSimulator(w).string_makespans(strings)
        finally:
            ContentionBatchSimulator.chunk_size = saved
        assert chunked.tolist() == full.tolist()

    @given(workload_batches())
    @settings(max_examples=60, deadline=None)
    def test_zero_transfers_collapse_to_contention_free_kernel(self, case):
        """With every transfer time zero there is nothing to serialise:
        the NIC kernel's makespans equal the contention-free kernel's
        **exactly** (bitwise, no tolerance)."""
        w, strings = case
        wz = _zero_transfers(w)
        nic = ContentionBatchSimulator(wz).string_makespans(strings)
        free = BatchSimulator(wz).string_makespans(strings)
        assert nic.tolist() == free.tolist()


class TestEnginesUnchangedByNicKernel:
    @given(
        workloads(min_tasks=2, max_tasks=7, max_machines=3),
        st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_ga_results_identical_under_nic(self, w, seed):
        base = dict(
            seed=seed,
            max_generations=3,
            population_size=8,
            stall_generations=None,
            network="nic",
        )
        batch = run_ga(w, GAConfig(batch_fitness=True, **base))
        scalar = run_ga(
            w,
            GAConfig(
                batch_fitness=False, incremental_evaluation=False, **base
            ),
        )
        assert batch.best_makespan == scalar.best_makespan
        assert batch.best_string == scalar.best_string
        assert (
            batch.trace.current_makespans() == scalar.trace.current_makespans()
        )
        # with the incremental fallback also off, both paths score one
        # full evaluation per chromosome — identical accounting
        assert batch.evaluations == scalar.evaluations

    @given(
        workloads(min_tasks=1, max_tasks=6, max_machines=3),
        st.integers(0, 2**16),
        st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_search_identical_under_nic(self, w, seed, samples):
        batch = random_search(w, samples=samples, seed=seed, network="nic")
        scalar = random_search(
            w, samples=samples, seed=seed, network="nic", batch_size=1
        )
        assert batch.makespan == scalar.makespan
        assert batch.string == scalar.string
        assert batch.evaluations == scalar.evaluations
