"""Unit tests for the CLI export subcommand and package surface."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.cli import main


class TestExport:
    def test_workload_artifacts(self, tmp_path, capsys):
        rc = main(
            ["export", "--preset", "paper-sample", "--out", str(tmp_path)]
        )
        assert rc == 0
        workload_files = list(tmp_path.glob("*.workload.json"))
        dot_files = list(tmp_path.glob("*.dot"))
        assert len(workload_files) == 1
        assert len(dot_files) == 1
        doc = json.loads(workload_files[0].read_text())
        assert doc["kind"] == "workload"
        assert doc["num_tasks"] == 7
        assert dot_files[0].read_text().startswith("digraph")

    def test_schedule_artifacts(self, tmp_path, capsys):
        rc = main(
            [
                "export", "--preset", "small", "--seed", "1",
                "--out", str(tmp_path), "--schedule", "--iterations", "15",
            ]
        )
        assert rc == 0
        svg = list(tmp_path.glob("*.gantt.svg"))
        sched = list(tmp_path.glob("*.schedule.json"))
        trace = list(tmp_path.glob("*.trace.json"))
        assert len(svg) == len(sched) == len(trace) == 1
        ET.fromstring(svg[0].read_text())
        assert json.loads(sched[0].read_text())["kind"] == "schedule"
        assert json.loads(trace[0].read_text())["kind"] == "trace"
        assert "SE best makespan" in capsys.readouterr().out

    def test_exported_workload_loads_back(self, tmp_path, capsys):
        from repro.io import load_json

        main(["export", "--preset", "small", "--seed", "2", "--out", str(tmp_path)])
        w = load_json(next(tmp_path.glob("*.workload.json")))
        assert w.num_tasks == 20

    def test_creates_output_dir(self, tmp_path, capsys):
        target = tmp_path / "nested" / "dir"
        rc = main(["export", "--preset", "small", "--out", str(target)])
        assert rc == 0
        assert target.is_dir()


class TestRemainingFigures:
    def test_figure_3b(self, capsys):
        assert main(["figure", "3b", "--seed", "1", "--iterations", "5"]) == 0
        assert "schedule length" in capsys.readouterr().out

    def test_figure_4b(self, capsys):
        assert main(["figure", "4b", "--seed", "1", "--iterations", "2"]) == 0
        assert "Y=9" in capsys.readouterr().out

    @pytest.mark.parametrize("fig", ["6", "7"])
    def test_figures_6_7(self, fig, capsys):
        rc = main(
            ["figure", fig, "--seed", "1", "--budget", "0.3", "--points", "3"]
        )
        assert rc == 0
        assert "GA" in capsys.readouterr().out


class TestPackageSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.extensions
        import repro.io
        import repro.model
        import repro.schedule
        import repro.workloads

        for pkg in (
            repro.analysis,
            repro.baselines,
            repro.core,
            repro.extensions,
            repro.io,
            repro.model,
            repro.schedule,
            repro.workloads,
        ):
            for name in pkg.__all__:
                assert getattr(pkg, name) is not None, f"{pkg.__name__}.{name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
