"""Soak test: the service under sustained load, 1000+ jobs.

Marked ``slow`` and excluded from the default (tier-1) run; CI's
dedicated slow job runs it with ``pytest -m slow``.  The point is scale:
invariants that hold on 4-job property examples must survive a thousand
jobs of Poisson traffic at ~0.7 offered load, with re-optimisation
windows firing throughout, in bounded memory and sane wall time.
"""

import pytest

from repro.online import (
    DynamicSimulator,
    ReoptConfig,
    poisson_stream,
    rate_for_utilisation,
)
from repro.workloads.presets import WorkloadSpec

pytestmark = pytest.mark.slow

TEMPLATE = WorkloadSpec(num_tasks=6, num_machines=4)
NUM_JOBS = 1000


@pytest.fixture(scope="module")
def soak_result():
    rate = rate_for_utilisation(TEMPLATE, 0.7)
    stream = poisson_stream(rate, NUM_JOBS, TEMPLATE, seed=123)
    reopt = ReoptConfig(interval=10_000.0, engine="tabu", max_iterations=8)
    return (
        stream,
        DynamicSimulator(
            stream, network="nic", policy="heft", reopt=reopt, seed=1
        ).run(),
    )


class TestSoak:
    def test_every_job_completes(self, soak_result):
        stream, result = soak_result
        assert result.metrics.num_jobs == NUM_JOBS
        assert len(result.jobs) == NUM_JOBS
        completed = {r.job_id for r in result.records}
        assert completed == {a.job_id for a in stream}

    def test_conservation_at_scale(self, soak_result):
        stream, result = soak_result
        per_job: dict[str, int] = {}
        for e in result.events:
            if e["type"] == "task_done":
                per_job[e["job"]] = per_job.get(e["job"], 0) + 1
        assert all(
            per_job[a.job_id] == a.spec.num_tasks for a in stream
        )

    def test_event_log_is_monotone(self, soak_result):
        _, result = soak_result
        times = [e["t"] for e in result.events]
        assert times == sorted(times)

    def test_flow_times_are_positive_and_finite(self, soak_result):
        _, result = soak_result
        for r in result.records:
            assert 0.0 < r.flow_time < float("inf")
            assert r.t_completed >= r.t_arrival

    def test_throughput_tracks_arrival_rate(self, soak_result):
        """At stable load the service drains what arrives: long-run
        throughput within 20% of the offered rate."""
        stream, result = soak_result
        rate = (len(stream) - 1) / (
            stream.horizon() - stream[0].t_arrival
        )
        assert result.metrics.throughput == pytest.approx(rate, rel=0.20)

    def test_latency_stays_bounded(self, soak_result):
        """No runaway queueing: p99 flow within a small multiple of the
        mean (the stream is stable at 0.7 load, not saturated)."""
        _, result = soak_result
        m = result.metrics
        assert m.p99_flow <= 20.0 * m.mean_flow
        assert m.max_flow <= 40.0 * m.mean_flow

    def test_replay_at_scale(self, soak_result):
        """The full 1000-job run replays identically (metrics-level
        check; the byte-level guarantee is pinned on smaller runs)."""
        stream, result = soak_result
        again = DynamicSimulator(
            stream,
            network="nic",
            policy="heft",
            reopt=ReoptConfig(
                interval=10_000.0, engine="tabu", max_iterations=8
            ),
            seed=1,
        ).run()
        assert again.metrics == result.metrics
        assert len(again.events) == len(result.events)
