"""Determinism and replay guarantees of the online service.

A service run must be an exactly replayable function of
``(stream, network, policy, reopt, seed)`` — byte-identical serialized
event logs across runs, across trace save/load round-trips, and across
``REPRO_WORKERS`` settings (the worker knob parallelises the offline
runner; nothing in the online loop may read it).  A committed golden
log additionally pins the full event stream of one small Poisson run
against accidental semantic drift.
"""

import json
import os
from pathlib import Path

import pytest

from repro.online import (
    DynamicSimulator,
    ReoptConfig,
    load_trace,
    poisson_stream,
    save_trace,
)
from repro.workloads.presets import WorkloadSpec

GOLDEN = Path(__file__).parent.parent / "data" / "golden_online_log.json"

TEMPLATE = WorkloadSpec(num_tasks=8, num_machines=3)


def _golden_run():
    stream = poisson_stream(0.004, 5, TEMPLATE, seed=2026)
    return DynamicSimulator(
        stream,
        network="nic",
        policy="heft",
        reopt=ReoptConfig(interval=150.0, engine="tabu", max_iterations=15),
        seed=11,
    ).run()


class TestRunToRunReplay:
    @pytest.mark.parametrize("network", ["contention-free", "nic"])
    @pytest.mark.parametrize(
        "reopt",
        [
            None,
            ReoptConfig(interval=100.0, engine="tabu", max_iterations=10),
            ReoptConfig(interval=100.0, engine="sa", max_iterations=80),
        ],
        ids=["no-reopt", "tabu", "sa"],
    )
    def test_identical_event_log_across_runs(self, network, reopt):
        stream = poisson_stream(0.004, 6, TEMPLATE, seed=7)
        runs = [
            DynamicSimulator(
                stream, network=network, policy="heft", reopt=reopt, seed=3
            ).run()
            for _ in range(2)
        ]
        assert runs[0].event_log_json() == runs[1].event_log_json()
        assert runs[0].metrics == runs[1].metrics

    def test_identical_across_repro_workers_settings(self, monkeypatch):
        logs = []
        for workers in ("1", "4"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            logs.append(_golden_run().event_log_json())
        assert logs[0] == logs[1]


class TestTraceRoundTrip:
    def test_save_load_replays_identically(self, tmp_path):
        stream = poisson_stream(0.003, 6, TEMPLATE, seed=99)
        path = tmp_path / "trace.json"
        save_trace(stream, path)
        replayed = load_trace(path)
        assert len(replayed) == len(stream)
        assert [a.job_id for a in replayed] == [a.job_id for a in stream]
        assert [a.spec for a in replayed] == [a.spec for a in stream]

        a = DynamicSimulator(stream, network="nic").run()
        b = DynamicSimulator(replayed, network="nic").run()
        assert a.event_log_json() == b.event_log_json()

    def test_trace_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "jobs": []}))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestGoldenLog:
    def test_pinned_event_log(self):
        """The committed golden log reproduces byte-for-byte.

        Regenerate deliberately (after a semantic change to the
        service) with::

            PYTHONPATH=src python -c "
            from tests.online.test_determinism import _golden_run, GOLDEN
            GOLDEN.write_text(_golden_run().event_log_json() + '\\n')"
        """
        assert GOLDEN.exists(), f"missing golden log {GOLDEN}"
        result = _golden_run()
        assert result.event_log_json() + "\n" == GOLDEN.read_text()

    def test_golden_log_is_wellformed(self):
        events = json.loads(GOLDEN.read_text())
        assert isinstance(events, list) and events
        kinds = {e["type"] for e in events}
        assert {"arrival", "dispatch", "task_done", "job_done", "reopt"} <= (
            kinds
        )
        times = [e["t"] for e in events]
        assert times == sorted(times)


class TestSeedSensitivity:
    def test_reopt_seed_changes_are_contained(self):
        """Different reopt seeds may change schedules, never conservation."""
        stream = poisson_stream(0.02, 5, TEMPLATE, seed=5)
        for seed in (0, 1):
            res = DynamicSimulator(
                stream,
                network="nic",
                policy="heft",
                reopt=ReoptConfig(
                    interval=20.0, engine="sa", max_iterations=120
                ),
                seed=seed,
            ).run()
            assert res.metrics.num_jobs == len(stream)


def test_no_wall_clock_in_event_log():
    """Log events carry only simulated-time keys, never wall-clock."""
    res = _golden_run()
    for e in res.events:
        assert set(e) <= {
            "t",
            "type",
            "job",
            "task",
            "policy",
            "tasks",
            "finish",
            "window",
            "rolled_back",
            "improved",
        }


def test_environment_is_not_consulted():
    """The loop never reads os.environ during a run (spot check)."""
    before = dict(os.environ)
    _golden_run()
    assert dict(os.environ) == before
