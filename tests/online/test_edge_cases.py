"""Edge cases of the online service, each pinned explicitly.

The five scenarios the property suite would only hit by luck:

1. the empty stream;
2. simultaneous arrivals (tie-break = stream order, documented);
3. a job arriving exactly at another job's completion instant
   (completion processed first, also documented);
4. a re-optimisation window firing with zero residual tasks;
5. a re-optimisation deadline so tight every incumbent is kept — which
   must be a *true no-op*: identical records to a run with no
   re-optimisation at all (the bit-identical re-commit guarantee).
"""

from dataclasses import replace

from repro.online import (
    DynamicSimulator,
    JobArrival,
    JobStream,
    ReoptConfig,
)
from repro.workloads.presets import WorkloadSpec

SPEC = WorkloadSpec(num_tasks=6, num_machines=2, seed=13)


def _jobs(*times, spec=SPEC):
    return JobStream(
        [
            JobArrival(f"j{i}", replace(spec, seed=100 + i, t_arrival=t))
            for i, t in enumerate(times)
        ]
    )


class TestEmptyStream:
    def test_run_is_trivial(self):
        result = DynamicSimulator(JobStream([])).run()
        assert result.records == ()
        assert result.events == ()
        assert result.jobs == ()
        assert result.metrics.num_jobs == 0
        assert result.metrics.throughput == 0.0
        assert result.event_log_json() == "[]"

    def test_reopt_never_ticks_on_empty_stream(self):
        result = DynamicSimulator(
            JobStream([]),
            reopt=ReoptConfig(interval=1.0, max_iterations=5),
        ).run()
        assert result.events == ()


class TestSimultaneousArrivals:
    def test_tie_break_is_stream_order(self):
        stream = _jobs(5.0, 5.0, 5.0)
        result = DynamicSimulator(stream).run()
        arrived = [e["job"] for e in result.events if e["type"] == "arrival"]
        assert arrived == ["j0", "j1", "j2"]
        dispatched = [
            e["job"] for e in result.events if e["type"] == "dispatch"
        ]
        assert dispatched == ["j0", "j1", "j2"]

    def test_later_jobs_see_earlier_commitments(self):
        """Same-instant jobs stack up: no two schedules share machine
        time even though all three arrived together."""
        stream = _jobs(0.0, 0.0, 0.0)
        result = DynamicSimulator(stream).run()
        spans = []
        for job in result.jobs:
            s = job.schedule
            spans += [
                (s.machine_of[t], s.start[t], s.finish[t]) for t in s.order
            ]
        spans.sort()
        for (m0, s0, f0), (m1, s1, f1) in zip(spans, spans[1:]):
            if m0 == m1:
                assert s1 >= f0 - 1e-9


class TestArrivalAtCompletionInstant:
    def test_completion_events_precede_the_arrival(self):
        # first run: learn when the solo job completes
        solo = DynamicSimulator(_jobs(0.0)).run()
        t_done = solo.records[0].t_completed
        # second run: a new job arrives exactly then
        stream = _jobs(0.0, t_done)
        result = DynamicSimulator(stream).run()
        at_instant = [e for e in result.events if e["t"] == t_done]
        kinds = [e["type"] for e in at_instant]
        assert "arrival" in kinds
        # every completion logged at that instant sorts before the
        # arrival — the pinned priority order
        assert kinds.index("job_done") < kinds.index("arrival")
        for e in at_instant:
            if e["type"] in ("task_done", "job_done"):
                assert kinds.index(e["type"]) < kinds.index("arrival")

    def test_job_one_sees_machines_from_its_arrival_onwards(self):
        solo = DynamicSimulator(_jobs(0.0)).run()
        t_done = solo.records[0].t_completed
        result = DynamicSimulator(_jobs(0.0, t_done)).run()
        second = result.jobs[1]
        assert min(second.schedule.start) >= t_done


class TestReoptWithZeroResidual:
    def test_window_is_a_noop_when_everything_started(self):
        """A single job starting at t=0 leaves nothing to roll back."""
        reopt = ReoptConfig(interval=1.0, engine="tabu", max_iterations=10)
        with_reopt = DynamicSimulator(_jobs(0.0), reopt=reopt, seed=4).run()
        without = DynamicSimulator(_jobs(0.0)).run()

        ticks = [e for e in with_reopt.events if e["type"] == "reopt"]
        assert ticks, "expected at least one reopt window"
        assert all(e["rolled_back"] == 0 for e in ticks)
        assert all(e["improved"] == 0 for e in ticks)
        # the committed schedule is untouched
        assert with_reopt.records == without.records
        assert (
            with_reopt.jobs[0].schedule.finish
            == without.jobs[0].schedule.finish
        )

    def test_ticking_stops_once_all_jobs_complete(self):
        reopt = ReoptConfig(interval=1.0, engine="tabu", max_iterations=5)
        result = DynamicSimulator(_jobs(0.0), reopt=reopt).run()
        t_done = result.records[0].t_completed
        last_tick = max(
            e["t"] for e in result.events if e["type"] == "reopt"
        )
        assert last_tick <= t_done + reopt.interval


class TestZeroBudgetWindow:
    def test_tight_deadline_keeps_every_incumbent_bit_identically(self):
        """max_iterations=0 rolls jobs back and re-commits them; the
        outcome must equal a run with re-optimisation disabled."""
        # burst of simultaneous jobs guarantees non-trivial rollbacks
        stream = _jobs(0.0, 0.0, 0.0, 10.0)
        frozen = DynamicSimulator(
            stream,
            network="nic",
            reopt=ReoptConfig(interval=7.0, engine="sa", max_iterations=0),
            seed=9,
        ).run()
        plain = DynamicSimulator(stream, network="nic").run()

        ticks = [e for e in frozen.events if e["type"] == "reopt"]
        assert any(e["rolled_back"] > 0 for e in ticks), (
            "scenario failed to exercise rollback"
        )
        assert all(e["improved"] == 0 for e in ticks)
        # records and final schedules are bit-identical to no-reopt
        assert frozen.records == plain.records
        for a, b in zip(frozen.jobs, plain.jobs):
            assert a.schedule.start == b.schedule.start
            assert a.schedule.finish == b.schedule.finish
