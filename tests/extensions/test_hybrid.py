"""Unit tests for HEFT-seeded warm starts."""

import pytest

from repro.baselines import GAConfig, heft
from repro.core import SEConfig
from repro.extensions.hybrid import heft_seeded_ga, heft_seeded_se
from repro.schedule import is_valid_for, verify_schedule


class TestHeftSeededSE:
    def test_never_worse_than_heft(self, tiny_workload):
        base = heft(tiny_workload).makespan
        res = heft_seeded_se(
            tiny_workload, SEConfig(seed=1, max_iterations=20)
        )
        assert res.best_makespan <= base + 1e-9

    def test_valid_and_verified(self, tiny_workload):
        res = heft_seeded_se(tiny_workload, SEConfig(seed=1, max_iterations=10))
        assert is_valid_for(res.best_string, tiny_workload.graph)
        verify_schedule(tiny_workload, res.best_schedule)

    def test_zero_iterations_equals_heft(self, tiny_workload):
        res = heft_seeded_se(tiny_workload, SEConfig(seed=1, max_iterations=0))
        assert res.best_makespan == pytest.approx(heft(tiny_workload).makespan)

    def test_usually_improves_on_heft(self):
        """With a real iteration budget the warm-started SE should refine
        HEFT on at least one of several seeds/workloads."""
        from repro.workloads import WorkloadSpec, build_workload

        improved = 0
        for seed in range(3):
            w = build_workload(
                WorkloadSpec(num_tasks=30, num_machines=6, seed=50 + seed)
            )
            base = heft(w).makespan
            res = heft_seeded_se(w, SEConfig(seed=seed, max_iterations=40))
            if res.best_makespan < base - 1e-9:
                improved += 1
        assert improved >= 1


class TestHeftSeededGA:
    def test_never_worse_than_heft(self, tiny_workload):
        base = heft(tiny_workload).makespan
        res = heft_seeded_ga(
            tiny_workload, GAConfig(seed=1, max_generations=10)
        )
        assert res.best_makespan <= base + 1e-9

    def test_valid_and_verified(self, tiny_workload):
        res = heft_seeded_ga(tiny_workload, GAConfig(seed=1, max_generations=5))
        verify_schedule(tiny_workload, res.best_schedule)

    def test_requires_elitism(self, tiny_workload):
        with pytest.raises(ValueError, match="elite_count"):
            heft_seeded_ga(tiny_workload, GAConfig(elite_count=0))
