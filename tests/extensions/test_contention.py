"""Unit and property tests for the link-contention simulator extension."""

import numpy as np
import pytest
from hypothesis import given

from repro.extensions.contention import (
    ContentionSimulator,
    contention_penalty,
)
from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.schedule import InvalidScheduleError, ScheduleString, Simulator
from tests.strategies import workload_strings


def fan_out_workload(comm: float) -> Workload:
    """Hub s0 feeding s1..s3, each branch on its own machine."""
    graph = TaskGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    e = ExecutionTimeMatrix(np.full((4, 4), 10.0))
    tr = TransferTimeMatrix(np.full((6, 3), comm), 4)
    return Workload(graph, HCSystem.of_size(4), e, tr)


class TestAgainstContentionFree:
    def test_zero_comm_identical(self):
        w = fan_out_workload(0.0)
        s = ScheduleString([0, 1, 2, 3], [0, 1, 2, 3], 4)
        assert ContentionSimulator(w).string_makespan(s) == pytest.approx(
            Simulator(w).string_makespan(s)
        )

    def test_single_transfer_identical(self):
        """One cross-machine edge: nothing to contend on."""
        graph = TaskGraph.from_edges(2, [(0, 1)])
        e = ExecutionTimeMatrix([[5.0, 5.0], [5.0, 5.0]])
        tr = TransferTimeMatrix([[7.0]], 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        s = ScheduleString([0, 1], [0, 1], 2)
        assert ContentionSimulator(w).string_makespan(s) == pytest.approx(
            Simulator(w).string_makespan(s)
        )

    def test_fanout_serializes_on_nic(self):
        """Three simultaneous sends from the hub must queue: arrivals at
        10+5, 10+10, 10+15 instead of all at 10+5."""
        w = fan_out_workload(5.0)
        s = ScheduleString([0, 1, 2, 3], [0, 1, 2, 3], 4)
        res = ContentionSimulator(w).evaluate(s)
        arrivals = sorted(t.finish for t in res.transfers)
        assert arrivals == [15.0, 20.0, 25.0]
        # last branch starts at 25 and runs 10
        assert res.makespan == pytest.approx(35.0)
        # contention-free baseline: every branch starts at 15
        assert Simulator(w).string_makespan(s) == pytest.approx(25.0)

    def test_same_machine_items_free(self):
        w = fan_out_workload(5.0)
        s = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 4)
        res = ContentionSimulator(w).evaluate(s)
        assert res.transfers == ()
        assert res.makespan == pytest.approx(40.0)  # serial on one machine


class TestContentionProperties:
    @given(workload_strings())
    def test_never_faster_than_contention_free(self, data):
        w, s = data
        free = Simulator(w).string_makespan(s)
        contended = ContentionSimulator(w).string_makespan(s)
        assert contended >= free - 1e-9

    @given(workload_strings())
    def test_schedule_structurally_sound(self, data):
        w, s = data
        res = ContentionSimulator(w).evaluate(s)
        sched = res.schedule
        assert sorted(sched.order) == list(range(w.num_tasks))
        assert sched.makespan == max(sched.finish)
        # durations still match E
        for t in range(w.num_tasks):
            m = sched.machine_of[t]
            assert sched.finish[t] - sched.start[t] == pytest.approx(
                w.exec_time(m, t)
            )

    @given(workload_strings())
    def test_nic_transfers_do_not_overlap(self, data):
        w, s = data
        res = ContentionSimulator(w).evaluate(s)
        per_nic: dict[int, list] = {}
        for t in res.transfers:
            per_nic.setdefault(t.src_machine, []).append(t)
        for transfers in per_nic.values():
            transfers.sort(key=lambda t: t.start)
            for a, b in zip(transfers, transfers[1:]):
                assert b.start >= a.finish - 1e-9


class TestAPI:
    def test_invalid_order_raises(self):
        w = fan_out_workload(1.0)
        s = ScheduleString([1, 0, 2, 3], [0, 1, 2, 3], 4)
        with pytest.raises(InvalidScheduleError):
            ContentionSimulator(w).evaluate(s)

    def test_makespan_entrypoints_agree(self):
        w = fan_out_workload(2.0)
        s = ScheduleString([0, 1, 2, 3], [0, 1, 2, 3], 4)
        sim = ContentionSimulator(w)
        assert sim.makespan(s.order, s.machines) == sim.string_makespan(s)

    def test_nic_busy_time(self):
        w = fan_out_workload(5.0)
        s = ScheduleString([0, 1, 2, 3], [0, 1, 2, 3], 4)
        res = ContentionSimulator(w).evaluate(s)
        assert res.nic_busy_time(0) == pytest.approx(15.0)
        assert res.nic_busy_time(1) == 0.0

    def test_contention_penalty(self):
        w = fan_out_workload(5.0)
        s = ScheduleString([0, 1, 2, 3], [0, 1, 2, 3], 4)
        assert contention_penalty(w, s) == pytest.approx(35.0 / 25.0 - 1.0)

    def test_penalty_zero_for_local_schedule(self):
        w = fan_out_workload(5.0)
        s = ScheduleString([0, 1, 2, 3], [0, 0, 0, 0], 4)
        assert contention_penalty(w, s) == pytest.approx(0.0)
