"""Unit tests for machines and machine sets."""

import pytest

from repro.model.machine import Machine, MachineSet


class TestMachine:
    def test_default_name(self):
        assert Machine(2).name == "m2"

    def test_architecture_tag(self):
        assert Machine(0, architecture="SIMD").architecture == "SIMD"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            Machine(-2)

    def test_ordering(self):
        assert Machine(0) < Machine(1)


class TestMachineSet:
    def test_of_size(self):
        ms = MachineSet.of_size(4)
        assert len(ms) == 4
        assert [m.index for m in ms] == [0, 1, 2, 3]

    def test_of_size_cycles_architectures(self):
        ms = MachineSet.of_size(4, architectures=("SIMD", "MIMD"))
        assert [m.architecture for m in ms] == ["SIMD", "MIMD", "SIMD", "MIMD"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MachineSet([])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            MachineSet.of_size(0)

    def test_non_dense_indices_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            MachineSet([Machine(0), Machine(2)])

    def test_out_of_order_indices_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            MachineSet([Machine(1), Machine(0)])

    def test_getitem(self):
        ms = MachineSet.of_size(3)
        assert ms[1].index == 1

    def test_contains(self):
        ms = MachineSet.of_size(2)
        assert Machine(0) in ms
        assert Machine(5) not in ms

    def test_num_pairs(self):
        assert MachineSet.of_size(1).num_pairs() == 0
        assert MachineSet.of_size(2).num_pairs() == 1
        assert MachineSet.of_size(20).num_pairs() == 190

    def test_indices_range(self):
        assert list(MachineSet.of_size(3).indices) == [0, 1, 2]

    def test_equality_and_hash(self):
        assert MachineSet.of_size(2) == MachineSet.of_size(2)
        assert hash(MachineSet.of_size(2)) == hash(MachineSet.of_size(2))
        assert MachineSet.of_size(2) != MachineSet.of_size(3)
