"""Unit tests for the task graph."""

import networkx as nx
import pytest

from repro.model.graph import TaskGraph
from repro.model.task import DataItem, Subtask


@pytest.fixture
def diamond() -> TaskGraph:
    # s0 -> s1, s0 -> s2, s1 -> s3, s2 -> s3
    return TaskGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_from_edges_counts(self, diamond):
        assert diamond.num_tasks == 4
        assert diamond.num_data_items == 4

    def test_single_task_no_edges(self):
        g = TaskGraph([Subtask(0)])
        assert g.num_tasks == 1
        assert g.num_data_items == 0
        assert g.topological_order() == (0,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TaskGraph([])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph.from_edges(2, [(0, 1), (1, 0)])

    def test_self_loop_rejected_at_item_level(self):
        with pytest.raises(ValueError, match="self-edge"):
            DataItem(0, producer=1, consumer=1)

    def test_missing_subtask_index_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            TaskGraph([Subtask(0), Subtask(2)])

    def test_duplicate_item_index_rejected(self):
        items = [
            DataItem(0, producer=0, consumer=1),
            DataItem(0, producer=0, consumer=1),
        ]
        with pytest.raises(ValueError, match="dense"):
            TaskGraph([Subtask(0), Subtask(1)], items)

    def test_item_referencing_missing_task_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            TaskGraph([Subtask(0)], [DataItem(0, producer=0, consumer=5)])

    def test_sizes_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sizes"):
            TaskGraph.from_edges(2, [(0, 1)], sizes=[1.0, 2.0])

    def test_parallel_data_items_allowed(self):
        g = TaskGraph.from_edges(2, [(0, 1), (0, 1)])
        assert g.num_data_items == 2
        assert g.predecessors(1) == (0,)  # distinct predecessor once
        assert g.in_items(1) == (0, 1)


class TestAdjacency:
    def test_predecessors(self, diamond):
        assert diamond.predecessors(3) == (1, 2)
        assert diamond.predecessors(0) == ()

    def test_successors(self, diamond):
        assert diamond.successors(0) == (1, 2)
        assert diamond.successors(3) == ()

    def test_in_out_items(self, diamond):
        assert diamond.in_items(3) == (2, 3)
        assert diamond.out_items(0) == (0, 1)

    def test_entry_and_exit(self, diamond):
        assert diamond.entry_tasks() == (0,)
        assert diamond.exit_tasks() == (3,)

    def test_multiple_entries(self):
        g = TaskGraph.from_edges(3, [(0, 2), (1, 2)])
        assert g.entry_tasks() == (0, 1)


class TestTopology:
    def test_topological_order_valid(self, diamond):
        assert diamond.is_valid_order(diamond.topological_order())

    def test_topological_order_deterministic_smallest_first(self):
        g = TaskGraph.from_edges(4, [(0, 3), (1, 3), (2, 3)])
        assert g.topological_order() == (0, 1, 2, 3)

    def test_topological_position_inverse(self, diamond):
        topo = diamond.topological_order()
        for pos, t in enumerate(topo):
            assert diamond.topological_position(t) == pos

    def test_levels(self, diamond):
        assert diamond.level(0) == 0
        assert diamond.level(1) == 1
        assert diamond.level(2) == 1
        assert diamond.level(3) == 2
        assert diamond.num_levels == 3

    def test_levels_tuple(self, diamond):
        assert diamond.levels == (0, 1, 1, 2)

    def test_ancestors(self, diamond):
        assert diamond.ancestors(3) == frozenset({0, 1, 2})
        assert diamond.ancestors(0) == frozenset()

    def test_descendants(self, diamond):
        assert diamond.descendants(0) == frozenset({1, 2, 3})
        assert diamond.descendants(3) == frozenset()

    def test_is_valid_order_rejects_non_permutation(self, diamond):
        assert not diamond.is_valid_order([0, 1, 2])
        assert not diamond.is_valid_order([0, 0, 1, 2])

    def test_is_valid_order_rejects_violation(self, diamond):
        assert not diamond.is_valid_order([3, 0, 1, 2])

    def test_is_valid_order_accepts_any_topological(self, diamond):
        assert diamond.is_valid_order([0, 2, 1, 3])


class TestConnectivity:
    def test_edgeless_zero(self):
        g = TaskGraph.from_edges(3, [])
        assert g.connectivity() == 0.0

    def test_total_order_one(self):
        g = TaskGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.connectivity() == pytest.approx(1.0)

    def test_single_task(self):
        assert TaskGraph.from_edges(1, []).connectivity() == 0.0

    def test_parallel_items_counted_once(self):
        g = TaskGraph.from_edges(2, [(0, 1), (0, 1)])
        assert g.connectivity() == pytest.approx(1.0)


class TestNetworkxInterop:
    def test_roundtrip(self, diamond):
        g = diamond.to_networkx()
        back = TaskGraph.from_networkx(g)
        assert back.num_tasks == diamond.num_tasks
        assert {d.edge for d in back.data_items} == {
            d.edge for d in diamond.data_items
        }

    def test_to_networkx_merges_parallel_items(self):
        g = TaskGraph.from_edges(2, [(0, 1), (0, 1)], sizes=[2.0, 3.0])
        nxg = g.to_networkx()
        assert nxg.edges[0, 1]["size"] == pytest.approx(5.0)
        assert nxg.edges[0, 1]["items"] == [0, 1]

    def test_from_networkx_requires_dense_nodes(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(ValueError, match="dense"):
            TaskGraph.from_networkx(g)

    def test_from_networkx_edge_sizes(self):
        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1, size=7.5)
        tg = TaskGraph.from_networkx(g)
        assert tg.data_item(0).size == 7.5
