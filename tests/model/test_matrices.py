"""Unit tests for the E and Tr matrices and the pair indexing."""

import numpy as np
import pytest

from repro.model.matrices import (
    ExecutionTimeMatrix,
    TransferTimeMatrix,
    num_pairs,
    pair_index,
)


class TestPairIndex:
    def test_enumeration_order(self):
        # pairs of 4 machines: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
        expected = {(0, 1): 0, (0, 2): 1, (0, 3): 2, (1, 2): 3, (1, 3): 4, (2, 3): 5}
        for (a, b), row in expected.items():
            assert pair_index(a, b, 4) == row

    def test_symmetry(self):
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert pair_index(a, b, 5) == pair_index(b, a, 5)

    def test_bijective_over_all_pairs(self):
        l = 7
        rows = {pair_index(a, b, l) for a in range(l) for b in range(a + 1, l)}
        assert rows == set(range(num_pairs(l)))

    def test_same_machine_rejected(self):
        with pytest.raises(ValueError, match="same-machine"):
            pair_index(2, 2, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            pair_index(0, 4, 4)
        with pytest.raises(ValueError, match="out of range"):
            pair_index(-1, 2, 4)

    def test_num_pairs(self):
        assert num_pairs(1) == 0
        assert num_pairs(2) == 1
        assert num_pairs(20) == 190


class TestExecutionTimeMatrix:
    def test_shape_accessors(self):
        e = ExecutionTimeMatrix([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert e.num_machines == 2
        assert e.num_tasks == 3

    def test_time_lookup(self):
        e = ExecutionTimeMatrix([[1.0, 2.0], [3.0, 4.0]])
        assert e.time(1, 0) == 3.0

    def test_values_read_only(self):
        e = ExecutionTimeMatrix([[1.0]])
        with pytest.raises(ValueError):
            e.values[0, 0] = 2.0

    def test_one_dim_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            ExecutionTimeMatrix([1.0, 2.0])

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ExecutionTimeMatrix([[0.0, 1.0]])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ExecutionTimeMatrix([[-1.0]])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ExecutionTimeMatrix([[float("nan")]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ExecutionTimeMatrix([[float("inf")]])

    def test_best_machine(self):
        e = ExecutionTimeMatrix([[5.0, 1.0], [2.0, 9.0]])
        assert e.best_machine(0) == 1
        assert e.best_machine(1) == 0

    def test_best_machine_tie_breaks_low_index(self):
        e = ExecutionTimeMatrix([[3.0], [3.0], [3.0]])
        assert e.best_machine(0) == 0

    def test_best_machines_ranking(self):
        e = ExecutionTimeMatrix([[5.0], [2.0], [8.0]])
        assert e.best_machines(0) == (1, 0, 2)
        assert e.best_machines(0, y=2) == (1, 0)

    def test_best_machines_y_clamped(self):
        e = ExecutionTimeMatrix([[5.0], [2.0]])
        assert e.best_machines(0, y=99) == (1, 0)

    def test_best_machines_y_zero_rejected(self):
        e = ExecutionTimeMatrix([[5.0]])
        with pytest.raises(ValueError, match=">= 1"):
            e.best_machines(0, y=0)

    def test_best_time(self):
        e = ExecutionTimeMatrix([[5.0], [2.0]])
        assert e.best_time(0) == 2.0

    def test_average_time(self):
        e = ExecutionTimeMatrix([[2.0], [4.0]])
        assert e.average_time(0) == 3.0

    def test_heterogeneity_zero_when_uniform(self):
        e = ExecutionTimeMatrix([[7.0, 3.0], [7.0, 3.0]])
        assert e.heterogeneity() == pytest.approx(0.0)

    def test_heterogeneity_positive_when_spread(self):
        e = ExecutionTimeMatrix([[1.0], [10.0]])
        assert e.heterogeneity() > 0.5

    def test_equality(self):
        a = ExecutionTimeMatrix([[1.0, 2.0]])
        b = ExecutionTimeMatrix([[1.0, 2.0]])
        c = ExecutionTimeMatrix([[1.0, 3.0]])
        assert a == b
        assert a != c

    def test_task_and_machine_views(self):
        e = ExecutionTimeMatrix([[1.0, 2.0], [3.0, 4.0]])
        assert list(e.task_times(1)) == [2.0, 4.0]
        assert list(e.machine_times(0)) == [1.0, 2.0]


class TestTransferTimeMatrix:
    def test_basic_lookup(self):
        tr = TransferTimeMatrix([[5.0, 7.0]], num_machines=2)
        assert tr.time(0, 1, 0) == 5.0
        assert tr.time(1, 0, 1) == 7.0

    def test_same_machine_is_free(self):
        tr = TransferTimeMatrix([[5.0]], num_machines=2)
        assert tr.time(0, 0, 0) == 0.0
        assert tr.time(1, 1, 0) == 0.0

    def test_wrong_row_count_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            TransferTimeMatrix([[1.0], [2.0]], num_machines=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TransferTimeMatrix([[-1.0]], num_machines=2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            TransferTimeMatrix([[float("nan")]], num_machines=2)

    def test_zeros_constructor(self):
        tr = TransferTimeMatrix.zeros(3, 4)
        assert tr.num_items == 4
        assert tr.time(0, 2, 3) == 0.0

    def test_uniform_constructor(self):
        tr = TransferTimeMatrix.uniform(3, 2, 9.0)
        assert tr.time(1, 2, 0) == 9.0

    def test_uniform_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            TransferTimeMatrix.uniform(2, 1, -1.0)

    def test_single_machine_empty(self):
        tr = TransferTimeMatrix(np.zeros((0, 3)), num_machines=1)
        assert tr.time(0, 0, 2) == 0.0
        assert tr.mean_time() == 0.0

    def test_from_item_sizes(self):
        tr = TransferTimeMatrix.from_item_sizes(
            [10.0, 20.0], num_machines=2, pair_latency=1.0, pair_rate=2.0
        )
        assert tr.time(0, 1, 0) == pytest.approx(6.0)   # 1 + 10/2
        assert tr.time(0, 1, 1) == pytest.approx(11.0)  # 1 + 20/2

    def test_from_item_sizes_per_pair_rates(self):
        tr = TransferTimeMatrix.from_item_sizes(
            [12.0], num_machines=3, pair_rate=[1.0, 2.0, 3.0]
        )
        assert tr.time(0, 1, 0) == pytest.approx(12.0)
        assert tr.time(0, 2, 0) == pytest.approx(6.0)
        assert tr.time(1, 2, 0) == pytest.approx(4.0)

    def test_from_item_sizes_bad_rate_shape(self):
        with pytest.raises(ValueError, match="pair_rate"):
            TransferTimeMatrix.from_item_sizes(
                [1.0], num_machines=3, pair_rate=[1.0, 2.0]
            )

    def test_from_item_sizes_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            TransferTimeMatrix.from_item_sizes(
                [1.0], num_machines=2, pair_rate=0.0
            )

    def test_mean_time(self):
        tr = TransferTimeMatrix([[2.0, 4.0]], num_machines=2)
        assert tr.mean_time() == pytest.approx(3.0)

    def test_item_times_column(self):
        tr = TransferTimeMatrix([[2.0, 4.0], [6.0, 8.0], [1.0, 3.0]], num_machines=3)
        assert list(tr.item_times(1)) == [4.0, 8.0, 3.0]

    def test_equality(self):
        a = TransferTimeMatrix([[1.0]], num_machines=2)
        b = TransferTimeMatrix([[1.0]], num_machines=2)
        assert a == b
