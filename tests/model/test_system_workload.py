"""Unit tests for HCSystem, Workload and WorkloadClass."""

import numpy as np
import pytest

from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
    WorkloadClass,
)
from repro.model.machine import Machine, MachineSet


class TestHCSystem:
    def test_of_size(self):
        sys_ = HCSystem.of_size(5)
        assert sys_.num_machines == 5
        assert sys_.machine(2).index == 2

    def test_accepts_machine_iterable(self):
        sys_ = HCSystem([Machine(0), Machine(1)])
        assert sys_.num_machines == 2

    def test_topology_default(self):
        assert HCSystem.of_size(2).topology == "fully-connected"

    def test_unsupported_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            HCSystem(MachineSet.of_size(2), topology="mesh")

    def test_equality(self):
        assert HCSystem.of_size(3) == HCSystem.of_size(3)
        assert HCSystem.of_size(3) != HCSystem.of_size(4)


def _make_parts(k=3, l=2, p=2):
    graph = TaskGraph.from_edges(k, [(0, 1), (1, 2)][:p])
    e = ExecutionTimeMatrix(np.full((l, k), 2.0))
    tr = TransferTimeMatrix(np.full((l * (l - 1) // 2, p), 1.0), l)
    return graph, HCSystem.of_size(l), e, tr


class TestWorkloadValidation:
    def test_valid_construction(self):
        w = Workload(*_make_parts())
        assert w.num_tasks == 3
        assert w.num_machines == 2
        assert w.num_data_items == 2

    def test_machine_count_mismatch(self):
        graph, _, e, tr = _make_parts()
        with pytest.raises(ValueError, match="machines"):
            Workload(graph, HCSystem.of_size(3), e, tr)

    def test_task_count_mismatch(self):
        graph, system, _, tr = _make_parts()
        bad_e = ExecutionTimeMatrix(np.full((2, 5), 2.0))
        with pytest.raises(ValueError, match="task columns"):
            Workload(graph, system, bad_e, tr)

    def test_item_count_mismatch(self):
        graph, system, e, _ = _make_parts()
        bad_tr = TransferTimeMatrix(np.full((1, 9), 1.0), 2)
        with pytest.raises(ValueError, match="item columns"):
            Workload(graph, system, e, bad_tr)

    def test_transfer_machine_mismatch(self):
        graph, system, e, _ = _make_parts()
        bad_tr = TransferTimeMatrix(np.full((3, 2), 1.0), 3)
        with pytest.raises(ValueError, match="sized for"):
            Workload(graph, system, e, bad_tr)

    def test_default_name(self):
        w = Workload(*_make_parts())
        assert w.name == "workload-k3-l2"


class TestWorkloadQueries:
    def test_exec_time(self):
        w = Workload(*_make_parts())
        assert w.exec_time(1, 2) == 2.0

    def test_comm_time_cross_machine(self):
        w = Workload(*_make_parts())
        assert w.comm_time(0, 1, 0) == 1.0

    def test_comm_time_same_machine_zero(self):
        w = Workload(*_make_parts())
        assert w.comm_time(1, 1, 0) == 0.0

    def test_serial_time_best(self):
        w = Workload(*_make_parts())
        assert w.serial_time_best() == pytest.approx(6.0)  # 3 tasks x 2.0

    def test_ccr_estimate(self):
        w = Workload(*_make_parts())
        assert w.ccr_estimate() == pytest.approx(0.5)  # 1.0 comm / 2.0 exec

    def test_describe_mentions_counts(self):
        w = Workload(*_make_parts())
        text = w.describe()
        assert "k = 3" in text
        assert "l = 2" in text


class TestWorkloadClass:
    def test_describe(self):
        wc = WorkloadClass(
            connectivity="high", heterogeneity="low", ccr=0.1, size="large"
        )
        assert "connectivity=high" in wc.describe()
        assert "CCR=0.1" in wc.describe()

    def test_describe_unknown_ccr(self):
        assert "CCR=?" in WorkloadClass().describe()
