"""Tests pinning the paper's Figure-1/Figure-2 sample instance."""

import pytest

from repro.core.goodness import optimal_finish_times
from repro.model import (
    FIGURE2_PAIRS,
    PAPER_O4,
    paper_sample_graph,
    paper_sample_system,
    paper_sample_workload,
)
from repro.schedule import ScheduleString, Simulator, is_valid_for, verify_schedule


class TestSampleStructure:
    def test_seven_subtasks_six_items(self):
        g = paper_sample_graph()
        assert g.num_tasks == 7
        assert g.num_data_items == 6

    def test_two_machines(self):
        assert paper_sample_system().num_machines == 2

    def test_s4_has_predecessors_s0_s1(self):
        """§4.3: the O4 example assigns s0 and s1 (s4's predecessors)."""
        g = paper_sample_graph()
        assert g.predecessors(4) == (0, 1)

    def test_levels(self):
        g = paper_sample_graph()
        assert g.level(0) == 0
        assert g.level(1) == 0
        assert g.level(4) == 1
        assert g.level(5) == 2

    def test_workload_dimensions_consistent(self):
        w = paper_sample_workload()
        assert w.exec_times.values.shape == (2, 7)
        assert w.transfer_times.values.shape == (1, 6)


class TestFigure2String:
    def test_is_valid(self):
        w = paper_sample_workload()
        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        assert is_valid_for(s, w.graph)

    def test_machine_sequences_match_paper(self):
        """§4.1: m0 runs s0, s3, s4 and m1 runs s1, s2, s5, s6."""
        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        assert s.machine_sequence(0) == [0, 3, 4]
        assert s.machine_sequence(1) == [1, 2, 5, 6]

    def test_schedule_verifies(self):
        w = paper_sample_workload()
        s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
        verify_schedule(w, Simulator(w).evaluate(s))


class TestO4Anchor:
    def test_o4_equals_paper_value(self):
        """The substitute matrices are engineered so O4 = 1835 (§4.3)."""
        w = paper_sample_workload()
        o = optimal_finish_times(w)
        assert o[4] == pytest.approx(PAPER_O4)

    def test_o4_bound_by_s1_chain(self):
        """The binding predecessor chain goes through s1 as in the paper
        ("including communication time between s1 and s4")."""
        w = paper_sample_workload()
        o = optimal_finish_times(w)
        e = w.exec_times
        # chain through s1: O1 + Tr(d3) + best exec of s4
        via_s1 = o[1] + w.comm_time(0, 1, 3) + e.best_time(4)
        assert o[4] == pytest.approx(via_s1)
