"""Unit tests for subtasks and data items."""

import pytest

from repro.model.task import DataItem, Subtask


class TestSubtask:
    def test_default_name_follows_paper_convention(self):
        assert Subtask(3).name == "s3"

    def test_explicit_name_is_kept(self):
        assert Subtask(0, name="fft").name == "fft"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            Subtask(-1)

    def test_ordering_by_index(self):
        assert Subtask(1) < Subtask(2)

    def test_equality_ignores_name(self):
        assert Subtask(4, name="a") == Subtask(4, name="b")

    def test_str_is_name(self):
        assert str(Subtask(5)) == "s5"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Subtask(0).index = 1  # type: ignore[misc]


class TestDataItem:
    def test_default_name(self):
        assert DataItem(2, producer=0, consumer=1).name == "d2"

    def test_edge_property(self):
        assert DataItem(0, producer=3, consumer=7).edge == (3, 7)

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError, match="self-edge"):
            DataItem(0, producer=2, consumer=2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            DataItem(-1, producer=0, consumer=1)

    def test_negative_producer_rejected(self):
        with pytest.raises(ValueError, match="producer/consumer"):
            DataItem(0, producer=-1, consumer=1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            DataItem(0, producer=0, consumer=1, size=-0.5)

    def test_zero_size_allowed(self):
        assert DataItem(0, producer=0, consumer=1, size=0.0).size == 0.0

    def test_default_size_is_one(self):
        assert DataItem(0, producer=0, consumer=1).size == 1.0

    def test_equality_by_index(self):
        a = DataItem(1, producer=0, consumer=2, size=5.0)
        b = DataItem(1, producer=0, consumer=2, size=9.0)
        assert a == b  # size is metadata, identity is the index
