"""End-to-end: every optimiser can optimise *under* the NIC backend.

The invariant shared by all of them: the reported makespan is exactly
what the contention backend measures for the returned string — the
algorithms are not allowed to optimise one cost model and report
another.
"""

import pytest

from repro.baselines import (
    GAConfig,
    GeneticAlgorithm,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
)
from repro.baselines.base import IncrementalScheduleBuilder
from repro.core import SEConfig, SimulatedEvolution
from repro.extensions.contention import ContentionSimulator
from repro.extensions.hybrid import heft_seeded_se
from repro.workloads import WorkloadSpec, build_workload


@pytest.fixture(scope="module")
def workload():
    # CCR high enough that contention actually bites
    return build_workload(
        WorkloadSpec(num_tasks=25, num_machines=4, ccr=1.0, seed=11)
    )


@pytest.fixture(scope="module")
def nic(workload):
    return ContentionSimulator(workload)


class TestSEUnderNic:
    def test_best_makespan_is_backend_truth(self, workload, nic):
        res = SimulatedEvolution(
            SEConfig(seed=3, max_iterations=10, network="nic")
        ).run(workload)
        assert res.best_makespan == nic.string_makespan(res.best_string)
        assert res.best_schedule.makespan == res.best_makespan

    def test_trace_records_nic_costs(self, workload, nic):
        res = SimulatedEvolution(
            SEConfig(seed=3, max_iterations=6, network="nic")
        ).run(workload)
        assert min(res.trace.best_makespans()) == res.best_makespan

    def test_network_changes_the_search(self, workload, nic):
        free = SimulatedEvolution(
            SEConfig(seed=3, max_iterations=10)
        ).run(workload)
        contended = SimulatedEvolution(
            SEConfig(seed=3, max_iterations=10, network="nic")
        ).run(workload)
        # the selector must actually steer the search, not just relabel
        # the report
        assert contended.best_string.pairs() != free.best_string.pairs()
        # instance-pinned expectation (not a theorem for a heuristic):
        # on this contended workload, optimising the true objective
        # should not lose to free-then-evaluate by more than 5%
        assert contended.best_makespan <= 1.05 * nic.string_makespan(
            free.best_string
        )


class TestGAUnderNic:
    def test_best_makespan_is_backend_truth(self, workload, nic):
        res = GeneticAlgorithm(
            GAConfig(
                seed=5, population_size=12, max_generations=6, network="nic"
            )
        ).run(workload)
        assert res.best_makespan == nic.string_makespan(res.best_string)

    def test_incremental_evaluation_is_equivalent_under_nic(self, workload):
        """The GA's delta path must stay bit-identical when the backend
        is the contention simulator."""
        def run(incremental: bool):
            return GeneticAlgorithm(
                GAConfig(
                    seed=9,
                    population_size=12,
                    max_generations=8,
                    network="nic",
                    incremental_evaluation=incremental,
                )
            ).run(workload)

        a, b = run(True), run(False)
        assert a.best_makespan == b.best_makespan
        assert [r.best_makespan for r in a.trace] == [
            r.best_makespan for r in b.trace
        ]


class TestHybridUnderNic:
    def test_warm_start_never_worse_than_nic_heft(self, workload, nic):
        cfg = SEConfig(seed=1, max_iterations=5, network="nic")
        base = heft(workload, network="nic")
        res = heft_seeded_se(workload, cfg)
        assert res.best_makespan <= base.makespan + 1e-9
        assert res.best_makespan == nic.string_makespan(res.best_string)


class TestBaselinesUnderNic:
    @pytest.mark.parametrize("fn", [heft, min_min, max_min, olb])
    def test_reported_makespan_is_backend_truth(self, fn, workload, nic):
        res = fn(workload, network="nic")
        assert res.network == "nic"
        assert res.makespan == nic.string_makespan(res.string)

    @pytest.mark.parametrize("fn", [heft, min_min, max_min, olb])
    def test_deterministic_under_nic(self, fn, workload):
        assert fn(workload, network="nic").string.pairs() == (
            fn(workload, network="nic").string.pairs()
        )

    def test_random_search_under_nic(self, workload, nic):
        res = random_search(workload, samples=16, seed=2, network="nic")
        assert res.network == "nic"
        assert res.makespan == nic.string_makespan(res.string)

    def test_nic_builder_queries_are_pure(self, workload):
        """data_ready_time / finish_time must not reserve NIC slots."""
        builder = IncrementalScheduleBuilder(workload, "probe", network="nic")
        order = workload.graph.topological_order()
        builder.place(order[0], 0)
        t = order[1]
        first = builder.finish_time(t, 1)
        for _ in range(3):
            assert builder.finish_time(t, 1) == first

    def test_nic_heft_can_beat_free_heft_under_contention(self, nic, workload):
        """Not a theorem, but on this contended instance the NIC-aware
        EFT rule should not lose to the blind one by more than noise —
        and the pinned instance has it strictly winning, which is the
        point of threading the selector through the baselines."""
        blind = heft(workload)  # optimised contention-free
        aware = heft(workload, network="nic")
        assert aware.makespan <= nic.string_makespan(blind.string) + 1e-9
