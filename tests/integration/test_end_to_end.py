"""Integration tests: full pipelines across several modules."""

import pytest

from repro.analysis import se_vs_ga, summarize, win_loss
from repro.baselines import GAConfig, heft, min_min, olb, random_search, run_ga
from repro.core import SEConfig, run_se
from repro.schedule import Simulator, compute_metrics, verify_schedule
from repro.workloads import (
    WorkloadSpec,
    build_workload,
    smoke_suite,
)


class TestFullPipeline:
    def test_generate_schedule_analyze(self):
        """Workload generation -> SE -> metrics, all consistent."""
        w = build_workload(
            WorkloadSpec(num_tasks=30, num_machines=5, seed=42)
        )
        res = run_se(w, SEConfig(seed=42, max_iterations=40))
        verify_schedule(w, res.best_schedule)
        m = compute_metrics(w, res.best_schedule)
        assert m.normalized_makespan >= 1.0
        assert m.makespan == pytest.approx(res.best_makespan)

    def test_all_algorithms_one_workload(self, tiny_workload):
        """Every algorithm returns a feasible schedule on one instance,
        and all makespans respect the common lower bound."""
        from repro.schedule.metrics import makespan_lower_bound

        lb = makespan_lower_bound(tiny_workload)
        results = {
            "se": run_se(tiny_workload, SEConfig(seed=1, max_iterations=30)).best_makespan,
            "ga": run_ga(tiny_workload, GAConfig(seed=1, max_generations=30)).best_makespan,
            "heft": heft(tiny_workload).makespan,
            "minmin": min_min(tiny_workload).makespan,
            "olb": olb(tiny_workload).makespan,
            "random": random_search(tiny_workload, samples=100, seed=1).makespan,
        }
        for name, m in results.items():
            assert m >= lb - 1e-9, name

    def test_iterative_heuristics_beat_random_sampling(self, tiny_workload):
        """At equal evaluation budget SE must beat blind random sampling."""
        se = run_se(tiny_workload, SEConfig(seed=7, max_iterations=40))
        rnd = random_search(tiny_workload, samples=se.evaluations, seed=7)
        assert se.best_makespan <= rnd.makespan

    def test_suite_aggregate_analysis(self):
        """Run HEFT vs OLB across a suite and aggregate with the stats
        helpers — the downstream user's typical experiment loop."""
        heft_vals, olb_vals = [], []
        for cell in smoke_suite(seed=3):
            w = cell.build()
            heft_vals.append(heft(w).makespan)
            olb_vals.append(olb(w).makespan)
        rec = win_loss(heft_vals, olb_vals)
        assert rec.n == 8
        assert rec.win_rate() >= 0.5  # HEFT should not lose to OLB overall
        assert summarize(heft_vals).mean <= summarize(olb_vals).mean

    def test_se_vs_ga_comparison_machinery(self, tiny_workload):
        cmp = se_vs_ga(tiny_workload, time_budget=0.5, grid_points=5, seed=9)
        assert cmp.workload_name == tiny_workload.name
        assert len(cmp.winner_timeline()) == 5


class TestCrossAlgorithmConsistency:
    def test_shared_simulator_semantics(self, tiny_workload):
        """Baseline builders and the simulator must agree: re-evaluating
        any baseline's string reproduces its reported makespan."""
        sim = Simulator(tiny_workload)
        for algo in (heft, min_min, olb):
            res = algo(tiny_workload)
            assert sim.string_makespan(res.string) == pytest.approx(res.makespan)

    def test_se_quality_not_absurd(self, tiny_workload):
        """SE after a modest budget lands within 2x of HEFT (sanity —
        typically it is at or below)."""
        se = run_se(tiny_workload, SEConfig(seed=11, max_iterations=60))
        assert se.best_makespan <= 2.0 * heft(tiny_workload).makespan
