"""Fast shape checks of the paper's experimental findings.

These are scaled-down versions of the figure benchmarks: they assert the
*qualitative* shapes the paper reports using small budgets, so the main
test suite already guards the reproduction claims.  The full-scale runs
live in ``benchmarks/``.
"""

import pytest

from repro.core import SEConfig, run_se
from repro.workloads import (
    WorkloadSpec,
    build_workload,
    figure3_workload,
)


@pytest.fixture(scope="module")
def fig3_run():
    w = figure3_workload(seed=11)
    return run_se(w, SEConfig(seed=4, max_iterations=80))


class TestFigure3Shapes:
    def test_selection_starts_high(self, fig3_run):
        """Fig. 3a: 'initially a large number of individuals should be
        selected' — at least a quarter of the 100 subtasks."""
        first = fig3_run.trace.selected_counts()[0]
        assert first >= 25

    def test_selection_decays(self, fig3_run):
        """Fig. 3a: the selected count decreases as SE progresses."""
        sel = fig3_run.trace.selected_counts()
        early = sum(sel[:10]) / 10
        late = sum(sel[-10:]) / 10
        assert late < early / 2

    def test_schedule_length_decreases(self, fig3_run):
        """Fig. 3b: the current schedule length trends downward."""
        cur = fig3_run.trace.current_makespans()
        assert cur[-1] < cur[0]

    def test_goodness_rises(self, fig3_run):
        mg = [r.mean_goodness for r in fig3_run.trace.records]
        assert mg[-1] > mg[0]


class TestYParameterShapes:
    """Scaled-down Fig. 4: Y trades run time for quality (§5.2)."""

    def test_trials_grow_with_y(self):
        w = build_workload(
            WorkloadSpec(num_tasks=40, num_machines=10, seed=2,
                         heterogeneity="low")
        )
        evals = {}
        for y in (2, 10):
            res = run_se(
                w, SEConfig(seed=3, max_iterations=15, y_candidates=y)
            )
            evals[y] = res.evaluations
        assert evals[10] > evals[2]

    def test_low_heterogeneity_larger_y_not_worse(self):
        """Fig. 4a: with low heterogeneity, larger Y improves (or at
        least does not hurt) final quality.  Averaged over seeds to tame
        stochastic noise."""
        deltas = []
        for seed in range(4):
            w = build_workload(
                WorkloadSpec(
                    num_tasks=40,
                    num_machines=10,
                    heterogeneity="low",
                    seed=100 + seed,
                )
            )
            small = run_se(
                w, SEConfig(seed=seed, max_iterations=25, y_candidates=2)
            ).best_makespan
            large = run_se(
                w, SEConfig(seed=seed, max_iterations=25, y_candidates=10)
            ).best_makespan
            deltas.append(small - large)
        assert sum(deltas) >= 0  # larger Y at least as good on average


class TestBiasShapes:
    """§4.4: negative bias selects more subtasks per iteration."""

    def test_selection_volume_by_bias(self):
        w = build_workload(WorkloadSpec(num_tasks=40, num_machines=8, seed=5))
        volumes = {}
        for bias in (-0.2, 0.2):
            res = run_se(
                w,
                SEConfig(seed=6, max_iterations=20, selection_bias=bias),
            )
            volumes[bias] = sum(res.trace.selected_counts())
        assert volumes[-0.2] > volumes[0.2]

    def test_negative_bias_costs_more_evaluations(self):
        w = build_workload(WorkloadSpec(num_tasks=40, num_machines=8, seed=5))
        evals = {}
        for bias in (-0.2, 0.2):
            res = run_se(
                w,
                SEConfig(seed=6, max_iterations=20, selection_bias=bias),
            )
            evals[bias] = res.evaluations
        assert evals[-0.2] > evals[0.2]
