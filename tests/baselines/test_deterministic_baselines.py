"""Unit tests for HEFT, list scheduling, Min-min/Max-min, OLB, random search."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineResult,
    heft,
    list_schedule,
    max_min,
    min_min,
    olb,
    random_search,
    task_processing_order,
    upward_ranks,
)
from repro.baselines.base import IncrementalScheduleBuilder
from repro.baselines.listsched import downward_ranks, mean_transfer_times
from repro.model import (
    ExecutionTimeMatrix,
    HCSystem,
    TaskGraph,
    TransferTimeMatrix,
    Workload,
)
from repro.schedule import is_valid_for, verify_schedule

ALL_DETERMINISTIC = [heft, min_min, max_min, olb]


@pytest.mark.parametrize("algo", ALL_DETERMINISTIC)
class TestCommonContracts:
    def test_schedule_verifies(self, algo, tiny_workload):
        res = algo(tiny_workload)
        verify_schedule(tiny_workload, res.schedule)

    def test_string_valid(self, algo, tiny_workload):
        res = algo(tiny_workload)
        assert is_valid_for(res.string, tiny_workload.graph)

    def test_deterministic(self, algo, tiny_workload):
        a = algo(tiny_workload)
        b = algo(tiny_workload)
        assert a.makespan == b.makespan
        assert a.string == b.string

    def test_single_machine(self, algo, single_machine_workload):
        res = algo(single_machine_workload)
        # one machine: makespan is the serial sum regardless of algorithm
        assert res.makespan == pytest.approx(25.0)

    def test_sample_workload(self, algo, sample_workload):
        res = algo(sample_workload)
        verify_schedule(sample_workload, res.schedule)


class TestUpwardRanks:
    def test_decreasing_along_edges(self, tiny_workload):
        r = upward_ranks(tiny_workload)
        for d in tiny_workload.graph.data_items:
            assert r[d.producer] > r[d.consumer]

    def test_exit_task_rank_is_mean_exec(self, diamond_workload):
        r = upward_ranks(diamond_workload)
        mean_exec = diamond_workload.exec_times.values.mean(axis=0)
        assert r[3] == pytest.approx(mean_exec[3])

    def test_hand_computed_diamond(self, diamond_workload):
        r = upward_ranks(diamond_workload)
        # mean execs: s0=12.5, s1=15, s2=25, s3=17.5; mean comm = 5
        assert r[1] == pytest.approx(15 + 5 + 17.5)
        assert r[2] == pytest.approx(25 + 5 + 17.5)
        assert r[0] == pytest.approx(12.5 + 5 + max(r[1], r[2]))

    def test_downward_ranks_increasing(self, tiny_workload):
        r = downward_ranks(tiny_workload)
        for d in tiny_workload.graph.data_items:
            assert r[d.consumer] > r[d.producer]

    def test_entry_task_downward_rank_zero(self, diamond_workload):
        assert downward_ranks(diamond_workload)[0] == 0.0

    def test_mean_transfer_single_machine_zero(self, single_machine_workload):
        mt = mean_transfer_times(single_machine_workload)
        assert np.all(mt == 0.0)


class TestTaskProcessingOrder:
    @pytest.mark.parametrize("priority", ["upward_rank", "downward_rank", "level"])
    def test_orders_topological(self, priority, tiny_workload):
        order = task_processing_order(tiny_workload, priority)
        assert tiny_workload.graph.is_valid_order(order)

    def test_unknown_priority(self, tiny_workload):
        with pytest.raises(ValueError, match="priority"):
            task_processing_order(tiny_workload, "bogus")  # type: ignore[arg-type]

    @pytest.mark.parametrize("priority", ["upward_rank", "downward_rank", "level"])
    def test_list_schedule_variants_verify(self, priority, tiny_workload):
        res = list_schedule(tiny_workload, priority=priority)
        verify_schedule(tiny_workload, res.schedule)


class TestHeftSpecifics:
    def test_heft_name(self, tiny_workload):
        assert heft(tiny_workload).name == "heft"

    def test_heft_beats_olb_on_heterogeneous(self):
        """On a strongly heterogeneous instance HEFT must beat OLB, which
        ignores execution times altogether."""
        from repro.workloads import WorkloadSpec, build_workload

        w = build_workload(
            WorkloadSpec(
                num_tasks=40,
                num_machines=6,
                heterogeneity="high",
                connectivity="low",
                ccr=0.1,
                seed=5,
            )
        )
        assert heft(w).makespan < olb(w).makespan

    def test_heft_chain_single_best_machine(self):
        """A chain with one dominant machine and huge comm: HEFT keeps
        everything on the dominant machine."""
        graph = TaskGraph.from_edges(3, [(0, 1), (1, 2)])
        e = ExecutionTimeMatrix([[1.0, 1.0, 1.0], [10.0, 10.0, 10.0]])
        tr = TransferTimeMatrix([[100.0, 100.0]], 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        res = heft(w)
        assert set(res.string.machines) == {0}
        assert res.makespan == pytest.approx(3.0)


class TestMinMinMaxMin:
    def test_min_min_name(self, tiny_workload):
        assert min_min(tiny_workload).name == "min-min"
        assert max_min(tiny_workload).name == "max-min"

    def test_both_respect_readiness(self, tiny_workload):
        for algo in (min_min, max_min):
            res = algo(tiny_workload)
            pos = {t: i for i, t in enumerate(res.string.order)}
            for d in tiny_workload.graph.data_items:
                assert pos[d.producer] < pos[d.consumer]

    def test_differ_on_spread_workload(self):
        """Min-min and Max-min should pick different orders when task
        sizes are spread out (classic behavioural difference)."""
        from repro.workloads import WorkloadSpec, build_workload

        w = build_workload(
            WorkloadSpec(
                num_tasks=30,
                num_machines=4,
                heterogeneity="high",
                connectivity="low",
                ccr=0.5,
                seed=11,
            )
        )
        assert min_min(w).string != max_min(w).string


class TestOLB:
    def test_ignores_execution_times(self):
        """OLB assigns by availability only: with identical availability
        it round-robins by machine id, not by speed."""
        graph = TaskGraph.from_edges(2, [])
        e = ExecutionTimeMatrix([[100.0, 100.0], [1.0, 1.0]])
        tr = TransferTimeMatrix(np.zeros((1, 0)), 2)
        w = Workload(graph, HCSystem.of_size(2), e, tr)
        res = olb(w)
        # first task goes to m0 (lowest id among equally-available)
        assert res.string.machine_of(res.string.order[0]) == 0


class TestRandomSearch:
    def test_result_valid(self, tiny_workload):
        res = random_search(tiny_workload, samples=50, seed=1)
        verify_schedule(tiny_workload, res.schedule)

    def test_deterministic_per_seed(self, tiny_workload):
        a = random_search(tiny_workload, samples=50, seed=9)
        b = random_search(tiny_workload, samples=50, seed=9)
        assert a.makespan == b.makespan

    def test_more_samples_never_worse(self, tiny_workload):
        a = random_search(tiny_workload, samples=10, seed=3)
        b = random_search(tiny_workload, samples=200, seed=3)
        assert b.makespan <= a.makespan

    def test_zero_samples_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match=">= 1"):
            random_search(tiny_workload, samples=0)

    def test_trace_recorded(self, tiny_workload):
        from repro.analysis.trace import ConvergenceTrace

        tr = ConvergenceTrace()
        random_search(tiny_workload, samples=25, seed=1, trace=tr)
        assert len(tr) == 25
        best = tr.best_makespans()
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best, best[1:]))

    def test_time_limit_stops_early(self, tiny_workload):
        res = random_search(
            tiny_workload, samples=10**8, seed=1, time_limit=0.1
        )
        assert res.evaluations < 10**8


class TestIncrementalBuilder:
    def test_unscheduled_predecessor_rejected(self, diamond_workload):
        b = IncrementalScheduleBuilder(diamond_workload, "t")
        with pytest.raises(ValueError, match="unscheduled"):
            b.data_ready_time(3, 0)

    def test_double_place_rejected(self, diamond_workload):
        b = IncrementalScheduleBuilder(diamond_workload, "t")
        b.place(0, 0)
        with pytest.raises(ValueError, match="already"):
            b.place(0, 1)

    def test_incomplete_result_rejected(self, diamond_workload):
        b = IncrementalScheduleBuilder(diamond_workload, "t")
        b.place(0, 0)
        with pytest.raises(ValueError, match="scheduled"):
            b.to_result()

    def test_builder_agrees_with_simulator(self, diamond_workload):
        b = IncrementalScheduleBuilder(diamond_workload, "t")
        for t in (0, 1, 2, 3):
            m, _ = b.best_machine(t)
            b.place(t, m)
        res = b.to_result()
        assert isinstance(res, BaselineResult)
        verify_schedule(diamond_workload, res.schedule)


class TestRandomSearchBatchDeadline:
    """PR-4 satellite: a ``time_limit`` used to silently disable the
    batch kernel (and its several-fold speedup).  Chunked scoring now
    stays on, with the deadline checked between chunks."""

    def test_time_limit_keeps_batch_kernel(self, tiny_workload, monkeypatch):
        from repro.optim import EvaluationService

        calls = {"n": 0}
        original = EvaluationService.batch_string_makespans

        def spy(self, strings, validate=True):
            calls["n"] += 1
            return original(self, strings, validate=validate)

        monkeypatch.setattr(
            EvaluationService, "batch_string_makespans", spy
        )
        res = random_search(
            tiny_workload, samples=64, seed=3, time_limit=60.0, batch_size=16
        )
        assert calls["n"] == 4  # 64 samples scored in 4 chunks of 16
        assert res.evaluations == 64

    def test_time_limited_run_bit_identical_to_unlimited(self, tiny_workload):
        """With a generous deadline the sample cap binds, and results
        must equal the historical no-time-limit batched run exactly."""
        limited = random_search(
            tiny_workload, samples=50, seed=9, time_limit=600.0
        )
        unlimited = random_search(tiny_workload, samples=50, seed=9)
        assert limited.makespan == unlimited.makespan
        assert limited.string == unlimited.string
        assert limited.evaluations == unlimited.evaluations == 50

    def test_deadline_checked_between_chunks(self, tiny_workload):
        """An expired deadline stops the run at chunk granularity, and
        every scored sample counts toward the reported draw count."""
        res = random_search(
            tiny_workload,
            samples=10**8,
            seed=1,
            time_limit=0.05,
            batch_size=32,
        )
        assert 1 <= res.evaluations < 10**8
        assert res.evaluations % 32 == 0  # whole chunks only

    def test_scalar_chunks_preserve_per_sample_deadline(self, tiny_workload):
        """batch_size=1 keeps the historical sample-at-a-time check."""
        res = random_search(
            tiny_workload, samples=10**8, seed=1, time_limit=0.05,
            batch_size=1,
        )
        assert 1 <= res.evaluations < 10**8
