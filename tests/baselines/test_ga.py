"""Unit tests for the GA baseline (Wang et al. 1997)."""

import numpy as np
import pytest

from repro.baselines.ga import (
    Chromosome,
    GAConfig,
    GeneticAlgorithm,
    initial_population,
    is_valid_chromosome,
    matching_crossover,
    matching_mutation,
    random_chromosome,
    run_ga,
    scheduling_crossover,
    scheduling_mutation,
)
from repro.schedule import Simulator, is_valid_for, verify_schedule


class TestGAConfig:
    def test_defaults_valid(self):
        GAConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"population_size": 1}, "population_size"),
            ({"crossover_prob": 1.5}, "crossover_prob"),
            ({"mutation_prob": -0.1}, "mutation_prob"),
            ({"elite_count": 50}, "elite_count"),
            ({"max_generations": -1}, "max_generations"),
            ({"time_limit": -2.0}, "time_limit"),
            ({"stall_generations": 0}, "stall_generations"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            GAConfig(**kwargs)


class TestChromosome:
    def test_random_chromosome_valid(self, tiny_workload, rng):
        for _ in range(20):
            c = random_chromosome(tiny_workload.graph, tiny_workload.num_machines, rng)
            assert is_valid_chromosome(
                c, tiny_workload.graph, tiny_workload.num_machines
            )

    def test_initial_population_size(self, tiny_workload, rng):
        pop = initial_population(tiny_workload.graph, 4, 12, rng)
        assert len(pop) == 12

    def test_initial_population_zero_rejected(self, tiny_workload, rng):
        with pytest.raises(ValueError, match=">= 1"):
            initial_population(tiny_workload.graph, 4, 0, rng)

    def test_to_string_roundtrip(self, tiny_workload, rng):
        c = random_chromosome(tiny_workload.graph, tiny_workload.num_machines, rng)
        s = c.to_string(tiny_workload.num_machines)
        assert list(s.order) == c.scheduling
        assert list(s.machines) == c.matching
        assert is_valid_for(s, tiny_workload.graph)

    def test_copy_independent(self, tiny_workload, rng):
        c = random_chromosome(tiny_workload.graph, 4, rng)
        d = c.copy()
        d.matching[0] = (d.matching[0] + 1) % 4
        assert c.matching[0] != d.matching[0] or 4 == 1

    def test_key_hashable_identity(self, tiny_workload, rng):
        c = random_chromosome(tiny_workload.graph, 4, rng)
        assert c.key() == c.copy().key()

    def test_invalid_chromosome_detected(self, tiny_workload):
        k = tiny_workload.num_tasks
        bad_machine = Chromosome(matching=[99] * k, scheduling=list(range(k)))
        assert not is_valid_chromosome(bad_machine, tiny_workload.graph, 4)
        wrong_len = Chromosome(matching=[0], scheduling=list(range(k)))
        assert not is_valid_chromosome(wrong_len, tiny_workload.graph, 4)


class TestOperators:
    def test_matching_crossover_swaps_suffix(self, tiny_workload):
        rng = np.random.default_rng(0)
        a = random_chromosome(tiny_workload.graph, 4, rng)
        b = random_chromosome(tiny_workload.graph, 4, rng)
        ca, cb = matching_crossover(a, b, np.random.default_rng(1))
        k = tiny_workload.num_tasks
        # children are a pointwise mix of the parents
        for t in range(k):
            assert ca.matching[t] in (a.matching[t], b.matching[t])
            assert cb.matching[t] in (a.matching[t], b.matching[t])
        # and complementary
        for t in range(k):
            if ca.matching[t] == b.matching[t] != a.matching[t]:
                assert cb.matching[t] == a.matching[t]

    def test_matching_crossover_keeps_scheduling(self, tiny_workload, rng):
        a = random_chromosome(tiny_workload.graph, 4, rng)
        b = random_chromosome(tiny_workload.graph, 4, rng)
        ca, cb = matching_crossover(a, b, rng)
        assert ca.scheduling == a.scheduling
        assert cb.scheduling == b.scheduling

    def test_scheduling_crossover_children_valid(self, tiny_workload):
        for seed in range(30):
            rng = np.random.default_rng(seed)
            a = random_chromosome(tiny_workload.graph, 4, rng)
            b = random_chromosome(tiny_workload.graph, 4, rng)
            ca, cb = scheduling_crossover(a, b, rng)
            assert is_valid_chromosome(ca, tiny_workload.graph, 4)
            assert is_valid_chromosome(cb, tiny_workload.graph, 4)

    def test_scheduling_crossover_preserves_matching(self, tiny_workload, rng):
        a = random_chromosome(tiny_workload.graph, 4, rng)
        b = random_chromosome(tiny_workload.graph, 4, rng)
        ca, cb = scheduling_crossover(a, b, rng)
        assert ca.matching == a.matching
        assert cb.matching == b.matching

    def test_crossover_resets_cost(self, tiny_workload, rng):
        a = random_chromosome(tiny_workload.graph, 4, rng)
        b = random_chromosome(tiny_workload.graph, 4, rng)
        a.cost, b.cost = 10.0, 20.0
        ca, cb = matching_crossover(a, b, rng)
        assert ca.cost is None and cb.cost is None

    def test_length_mismatch_rejected(self, tiny_workload, rng):
        a = random_chromosome(tiny_workload.graph, 4, rng)
        b = Chromosome(matching=[0], scheduling=[0])
        with pytest.raises(ValueError, match="length"):
            matching_crossover(a, b, rng)
        with pytest.raises(ValueError, match="length"):
            scheduling_crossover(a, b, rng)

    def test_matching_mutation_in_range(self, tiny_workload, rng):
        c = random_chromosome(tiny_workload.graph, 4, rng)
        for _ in range(50):
            matching_mutation(c, 4, rng)
            assert all(0 <= m < 4 for m in c.matching)

    def test_scheduling_mutation_stays_valid(self, tiny_workload, rng):
        c = random_chromosome(tiny_workload.graph, 4, rng)
        for _ in range(50):
            scheduling_mutation(c, tiny_workload.graph, 4, rng)
            assert tiny_workload.graph.is_valid_order(c.scheduling)


class TestGAEngine:
    def test_best_schedule_verifies(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=1, max_generations=15))
        verify_schedule(tiny_workload, res.best_schedule)

    def test_best_string_valid(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=1, max_generations=15))
        assert is_valid_for(res.best_string, tiny_workload.graph)

    def test_makespan_consistent(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=1, max_generations=15))
        sim = Simulator(tiny_workload)
        assert res.best_makespan == pytest.approx(
            sim.string_makespan(res.best_string)
        )

    def test_deterministic_per_seed(self, tiny_workload):
        a = run_ga(tiny_workload, GAConfig(seed=4, max_generations=10))
        b = run_ga(tiny_workload, GAConfig(seed=4, max_generations=10))
        assert a.best_makespan == b.best_makespan
        assert a.trace.best_makespans() == b.trace.best_makespans()

    def test_best_monotone(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=2, max_generations=30))
        best = res.trace.best_makespans()
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best, best[1:]))

    def test_elitism_keeps_best(self, tiny_workload):
        """With elitism the generation-best never exceeds the historical
        best by construction; the trace must reflect that."""
        res = run_ga(
            tiny_workload, GAConfig(seed=3, max_generations=30, elite_count=1)
        )
        cur = res.trace.current_makespans()
        best = res.trace.best_makespans()
        for c, b in zip(cur, best):
            assert c >= b - 1e-9

    def test_improves_over_generations(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=5, max_generations=60))
        assert res.trace.improvement_ratio() > 1.0

    def test_stops_by_stall(self, tiny_workload):
        res = run_ga(
            tiny_workload,
            GAConfig(seed=1, max_generations=10**5, stall_generations=3),
        )
        assert res.stopped_by == "stall"

    def test_stops_by_time(self, tiny_workload):
        res = run_ga(
            tiny_workload,
            GAConfig(
                seed=1,
                max_generations=10**9,
                stall_generations=None,
                time_limit=0.2,
            ),
        )
        assert res.stopped_by == "time"

    def test_seed_population_used(self, tiny_workload, rng):
        seeds = initial_population(tiny_workload.graph, 4, 5, rng)
        engine = GeneticAlgorithm(GAConfig(seed=1, max_generations=2))
        res = engine.run(tiny_workload, initial=seeds)
        assert res.generations == 2

    def test_zero_generations(self, tiny_workload):
        res = run_ga(tiny_workload, GAConfig(seed=1, max_generations=0))
        assert res.generations == 0
        assert is_valid_for(res.best_string, tiny_workload.graph)


class TestIncrementalEvaluation:
    """The delta-evaluation path must be invisible in results: identical
    traces, best makespans and final strings for any seed."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_delta_path_equals_full_path(self, tiny_workload, seed):
        cfg = dict(max_generations=25, stall_generations=None, seed=seed)
        delta = run_ga(
            tiny_workload, GAConfig(incremental_evaluation=True, **cfg)
        )
        full = run_ga(
            tiny_workload, GAConfig(incremental_evaluation=False, **cfg)
        )
        assert delta.best_makespan == full.best_makespan  # bit-identical
        assert delta.trace.best_makespans() == full.trace.best_makespans()
        assert (
            delta.trace.current_makespans() == full.trace.current_makespans()
        )
        assert delta.best_string == full.best_string

    def test_delta_path_is_default(self):
        assert GAConfig().incremental_evaluation is True


class TestBatchFitness:
    """The vectorized population-fitness path must be invisible in
    results: identical traces, best makespans and final strings."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_batch_path_equals_scalar_path(self, tiny_workload, seed):
        cfg = dict(max_generations=25, stall_generations=None, seed=seed)
        batch = run_ga(tiny_workload, GAConfig(batch_fitness=True, **cfg))
        scalar = run_ga(
            tiny_workload,
            GAConfig(
                batch_fitness=False, incremental_evaluation=False, **cfg
            ),
        )
        assert batch.best_makespan == scalar.best_makespan  # bit-identical
        assert batch.trace.best_makespans() == scalar.trace.best_makespans()
        assert (
            batch.trace.current_makespans()
            == scalar.trace.current_makespans()
        )
        assert batch.best_string == scalar.best_string
        # the batch path counts exactly one simulator call per chromosome
        assert batch.evaluations == scalar.evaluations

    def test_batch_path_is_default(self):
        assert GAConfig().batch_fitness is True

    def test_batch_fitness_under_nic_keeps_results(self, tiny_workload):
        cfg = dict(
            max_generations=10, stall_generations=None, seed=3, network="nic"
        )
        batch = run_ga(tiny_workload, GAConfig(batch_fitness=True, **cfg))
        scalar = run_ga(tiny_workload, GAConfig(batch_fitness=False, **cfg))
        assert batch.best_makespan == scalar.best_makespan
        assert batch.best_string == scalar.best_string


class TestObservers:
    """The GA observer hooks (ISSUE-4 satellite): same protocol as SE."""

    def test_observer_sees_every_generation(self, tiny_workload):
        records = []
        run_ga(
            tiny_workload,
            GAConfig(
                seed=1,
                population_size=6,
                max_generations=9,
                stall_generations=None,
            ),
            observers=[lambda rec, s: records.append((rec, s))],
        )
        assert [r.iteration for r, _ in records] == list(range(1, 10))

    def test_observer_string_is_generation_best(self, tiny_workload):
        sim = Simulator(tiny_workload)
        seen = []

        def check(rec, string):
            assert is_valid_for(string, tiny_workload.graph)
            assert sim.string_makespan(string) == rec.current_makespan
            seen.append(rec.iteration)

        run_ga(
            tiny_workload,
            GAConfig(
                seed=2,
                population_size=6,
                max_generations=5,
                stall_generations=None,
            ),
            observers=[check],
        )
        assert seen == [1, 2, 3, 4, 5]

    def test_existing_se_observers_work_on_ga(self, tiny_workload):
        from repro.core.observers import StallDetector

        det = StallDetector()
        run_ga(
            tiny_workload,
            GAConfig(
                seed=1,
                population_size=6,
                max_generations=8,
                stall_generations=None,
            ),
            observers=[det],
        )
        assert det.longest_streak >= det.current_streak >= 0

    def test_observers_do_not_change_the_run(self, tiny_workload):
        cfg = dict(
            seed=7, population_size=6, max_generations=6,
            stall_generations=None,
        )
        plain = run_ga(tiny_workload, GAConfig(**cfg))
        observed = run_ga(
            tiny_workload, GAConfig(**cfg), observers=[lambda rec, s: None]
        )
        assert plain.best_makespan == observed.best_makespan
        assert plain.best_string == observed.best_string
        assert (
            plain.trace.current_makespans()
            == observed.trace.current_makespans()
        )
