"""Unit and round-trip tests for JSON serialization."""

import json

import pytest

from repro.analysis.trace import ConvergenceTrace, IterationRecord
from repro.io import (
    SerializationError,
    load_json,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    string_from_dict,
    string_to_dict,
    trace_from_dict,
    trace_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.model import paper_sample_workload
from repro.schedule import Simulator
from repro.schedule.operations import random_valid_string
from repro.workloads import WorkloadSpec, build_workload


@pytest.fixture
def workload():
    return build_workload(
        WorkloadSpec(num_tasks=15, num_machines=3, seed=5, name="io-test")
    )


class TestWorkloadRoundTrip:
    def test_dimensions_preserved(self, workload):
        back = workload_from_dict(workload_to_dict(workload))
        assert back.num_tasks == workload.num_tasks
        assert back.num_machines == workload.num_machines
        assert back.num_data_items == workload.num_data_items

    def test_matrices_exact(self, workload):
        back = workload_from_dict(workload_to_dict(workload))
        assert back.exec_times == workload.exec_times
        assert back.transfer_times == workload.transfer_times

    def test_graph_structure_exact(self, workload):
        back = workload_from_dict(workload_to_dict(workload))
        assert [d.edge for d in back.graph.data_items] == [
            d.edge for d in workload.graph.data_items
        ]

    def test_metadata_preserved(self, workload):
        back = workload_from_dict(workload_to_dict(workload))
        assert back.name == "io-test"
        assert back.classification.ccr == workload.classification.ccr

    def test_schedules_identical_after_roundtrip(self, workload):
        """The decisive test: any string evaluates identically on the
        original and the round-tripped workload."""
        back = workload_from_dict(workload_to_dict(workload))
        for seed in range(5):
            s = random_valid_string(workload.graph, workload.num_machines, seed)
            assert Simulator(workload).string_makespan(s) == Simulator(
                back
            ).string_makespan(s)

    def test_sample_workload_roundtrip(self):
        w = paper_sample_workload()
        back = workload_from_dict(workload_to_dict(w))
        assert back.exec_times == w.exec_times

    def test_single_machine_roundtrip(self, single_machine_workload):
        back = workload_from_dict(workload_to_dict(single_machine_workload))
        assert back.num_machines == 1
        assert back.num_data_items == 4

    def test_json_serializable(self, workload):
        json.dumps(workload_to_dict(workload))  # must not raise

    def test_missing_key_rejected(self, workload):
        doc = workload_to_dict(workload)
        del doc["exec_times"]
        with pytest.raises(SerializationError, match="exec_times"):
            workload_from_dict(doc)

    def test_wrong_version_rejected(self, workload):
        doc = workload_to_dict(workload)
        doc["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            workload_from_dict(doc)


class TestStringAndScheduleRoundTrip:
    def test_string_roundtrip(self, workload):
        s = random_valid_string(workload.graph, workload.num_machines, 1)
        back = string_from_dict(string_to_dict(s))
        assert back == s

    def test_schedule_roundtrip(self, workload):
        s = random_valid_string(workload.graph, workload.num_machines, 1)
        sched = Simulator(workload).evaluate(s)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back == sched


class TestTraceRoundTrip:
    def test_roundtrip(self):
        t = ConvergenceTrace()
        t.append(
            IterationRecord(
                iteration=1,
                current_makespan=10.0,
                best_makespan=10.0,
                num_selected=3,
                elapsed_seconds=0.5,
                mean_goodness=0.7,
                evaluations=42,
            )
        )
        t.append(
            IterationRecord(
                iteration=2,
                current_makespan=9.0,
                best_makespan=9.0,
                num_selected=None,
                mean_goodness=None,
            )
        )
        back = trace_from_dict(trace_to_dict(t))
        assert len(back) == 2
        assert back[0].evaluations == 42
        assert back[1].num_selected is None


class TestFileHelpers:
    def test_save_and_load_workload(self, workload, tmp_path):
        path = save_json(workload, tmp_path / "w.json")
        back = load_json(path)
        assert back.exec_times == workload.exec_times

    def test_save_and_load_string(self, workload, tmp_path):
        s = random_valid_string(workload.graph, workload.num_machines, 2)
        back = load_json(save_json(s, tmp_path / "s.json"))
        assert back == s

    def test_save_and_load_schedule(self, workload, tmp_path):
        s = random_valid_string(workload.graph, workload.num_machines, 2)
        sched = Simulator(workload).evaluate(s)
        back = load_json(save_json(sched, tmp_path / "sched.json"))
        assert back == sched

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="serialise"):
            save_json({"not": "supported"}, tmp_path / "x.json")

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(SerializationError, match="kind"):
            load_json(path)
