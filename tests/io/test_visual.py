"""Unit tests for SVG Gantt and DOT graph export."""

import xml.etree.ElementTree as ET

import pytest

from repro.io.visual import graph_to_dot, save_dot, save_svg, schedule_to_svg
from repro.model import paper_sample_graph, paper_sample_workload
from repro.schedule import ScheduleString, Simulator
from repro.model import FIGURE2_PAIRS

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def workload():
    return paper_sample_workload()


@pytest.fixture
def schedule(workload):
    s = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
    return Simulator(workload).evaluate(s)


class TestScheduleToSvg:
    def test_well_formed_xml(self, workload, schedule):
        svg = schedule_to_svg(workload, schedule)
        ET.fromstring(svg)  # must parse

    def test_one_block_per_task_plus_lanes(self, workload, schedule):
        root = ET.fromstring(schedule_to_svg(workload, schedule))
        rects = root.findall(f".//{SVG_NS}rect")
        # 2 lane backgrounds + 7 task blocks
        assert len(rects) == 2 + workload.num_tasks

    def test_contains_machine_labels(self, workload, schedule):
        svg = schedule_to_svg(workload, schedule)
        assert ">m0<" in svg and ">m1<" in svg

    def test_title_includes_makespan(self, workload, schedule):
        svg = schedule_to_svg(workload, schedule)
        assert f"{schedule.makespan:.1f}" in svg

    def test_tooltips_describe_tasks(self, workload, schedule):
        svg = schedule_to_svg(workload, schedule)
        assert "<title>s0:" in svg

    def test_width_respected(self, workload, schedule):
        root = ET.fromstring(schedule_to_svg(workload, schedule, width=500))
        assert root.get("width") == "500"

    def test_small_width_rejected(self, workload, schedule):
        with pytest.raises(ValueError, match="width"):
            schedule_to_svg(workload, schedule, width=50)

    def test_save_svg(self, workload, schedule, tmp_path):
        path = save_svg(workload, schedule, tmp_path / "g.svg")
        assert path.exists()
        ET.fromstring(path.read_text())

    def test_blocks_within_lanes(self, workload, schedule):
        """Every task block's x-range lies inside the plot area."""
        root = ET.fromstring(schedule_to_svg(workload, schedule, width=900))
        for rect in root.findall(f".//{SVG_NS}rect"):
            x = float(rect.get("x"))
            w = float(rect.get("width"))
            assert 0 <= x <= 900
            assert x + w <= 900 + 1e-6


class TestGraphToDot:
    def test_contains_all_nodes_and_edges(self):
        g = paper_sample_graph()
        dot = graph_to_dot(g)
        for t in range(7):
            assert f"s{t} " in dot
        assert dot.count("->") == 6

    def test_edge_labels_carry_items(self):
        g = paper_sample_graph()
        dot = graph_to_dot(g)
        assert 'label="d3' in dot

    def test_name_sanitised(self):
        g = paper_sample_graph()
        dot = graph_to_dot(g, name="my graph!")
        assert dot.startswith("digraph my_graph_ {")

    def test_save_dot(self, tmp_path):
        g = paper_sample_graph()
        path = save_dot(g, tmp_path / "g.dot")
        assert path.read_text().startswith("digraph")
