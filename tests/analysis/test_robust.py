"""RiskSummary / risk_profile / compare_risk."""

import numpy as np
import pytest

from repro.analysis import RiskSummary, compare_risk, risk_profile
from repro.online.metrics import percentile
from repro.schedule.operations import random_valid_string
from repro.stochastic import ScenarioEvaluator, sample_scenarios
from repro.workloads import small_workload

SAMPLES = [10.0, 12.0, 11.0, 30.0]


class TestRiskSummary:
    def test_statistics_match_the_shared_reducers(self):
        s = RiskSummary.from_samples(SAMPLES)
        assert s.scenarios == 4
        assert s.mean == pytest.approx(np.mean(SAMPLES))
        assert s.p50 == percentile(SAMPLES, 0.5)
        assert s.p95 == percentile(SAMPLES, 0.95)
        assert s.worst == 30.0
        assert s.mean <= s.p95 <= s.worst
        assert s.cvar95 >= s.p95 - 1e-12

    def test_single_sample_collapses_to_the_value(self):
        s = RiskSummary.from_samples([7.0])
        assert (s.mean, s.p50, s.p95, s.cvar95, s.worst) == (7.0,) * 5

    def test_rejects_empty_or_matrix_input(self):
        with pytest.raises(ValueError):
            RiskSummary.from_samples([])
        with pytest.raises(ValueError):
            RiskSummary.from_samples(np.ones((2, 2)))

    def test_dict_and_lines_cover_every_statistic(self):
        s = RiskSummary.from_samples(SAMPLES)
        d = s.to_dict()
        assert set(d) == {"mean", "p50", "p95", "cvar95", "worst",
                          "scenarios"}
        lines = s.format_lines("  ")
        assert all(line.startswith("  ") for line in lines)
        assert any("CVaR95" in line for line in lines)


class TestProfiles:
    def _setup(self):
        w = small_workload(seed=1)
        ev = ScenarioEvaluator(
            sample_scenarios(w, "lognormal:0.3", scenarios=16, seed=4)
        )
        rng = np.random.default_rng(0)
        a = random_valid_string(w.graph, w.num_machines, rng)
        b = random_valid_string(w.graph, w.num_machines, rng)
        return ev, a, b

    def test_risk_profile_summarises_the_sample_vector(self):
        ev, a, _ = self._setup()
        got = risk_profile(ev, a)
        assert got == RiskSummary.from_samples(ev.samples_string(a))

    def test_compare_risk_is_a_paired_ratio(self):
        ev, a, b = self._setup()
        ratios = compare_risk(ev, a, b)
        pa, pb = risk_profile(ev, a), risk_profile(ev, b)
        assert ratios["p95"] == pytest.approx(pb.p95 / pa.p95)
        assert compare_risk(ev, a, a) == pytest.approx(
            {k: 1.0 for k in ratios}
        )
