"""Unit tests for ASCII plotting and markdown reporting."""

import pytest

from repro.analysis.ascii_plot import Series, line_plot, sparkline
from repro.analysis.report import (
    ExperimentRecord,
    markdown_table,
    render_report,
)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            Series("a", [1, 2], [1])


class TestLinePlot:
    def test_contains_glyphs_and_legend(self):
        s1 = Series("alpha", [0, 1, 2], [0, 1, 4])
        s2 = Series("beta", [0, 1, 2], [4, 1, 0])
        art = line_plot([s1, s2], width=30, height=8)
        assert "*" in art
        assert "o" in art
        assert "alpha" in art and "beta" in art

    def test_title_and_labels(self):
        s = Series("x", [0, 1], [0, 1])
        art = line_plot([s], title="T", x_label="xx", y_label="yy")
        assert art.splitlines()[0] == "T"
        assert "xx" in art
        assert "yy" in art

    def test_constant_series_handled(self):
        s = Series("flat", [0, 1, 2], [5, 5, 5])
        art = line_plot([s], width=20, height=5)
        assert "*" in art

    def test_non_finite_points_skipped(self):
        s = Series("gappy", [0, 1, 2], [float("inf"), 1.0, 2.0])
        art = line_plot([s], width=20, height=5)
        assert "*" in art

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            line_plot([])

    def test_all_infinite_rejected(self):
        s = Series("void", [0.0], [float("nan")])
        with pytest.raises(ValueError, match="finite"):
            line_plot([s])

    def test_canvas_too_small_rejected(self):
        s = Series("a", [0, 1], [0, 1])
        with pytest.raises(ValueError, match="canvas"):
            line_plot([s], width=5, height=2)

    def test_canvas_dimensions(self):
        s = Series("a", [0, 1], [0, 1])
        art = line_plot([s], width=30, height=6)
        rows = [l for l in art.splitlines() if l.startswith("|")]
        assert len(rows) == 6
        assert all(len(r) == 31 for r in rows)


class TestSparkline:
    def test_monotone_series(self):
        sp = sparkline([1, 2, 3, 4])
        assert sp[0] == "▁"
        assert sp[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_width_thinning(self):
        sp = sparkline(list(range(100)), width=10)
        assert len(sp) == 10

    def test_nan_renders_blank(self):
        sp = sparkline([1.0, float("nan"), 2.0])
        assert sp[1] == " "


class TestMarkdownTable:
    def test_basic(self):
        md = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            markdown_table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError, match="header"):
            markdown_table([], [])


class TestExperimentRecord:
    def test_verdict(self):
        ok = ExperimentRecord("X", "d", "p", "m", matches=True)
        bad = ExperimentRecord("X", "d", "p", "m", matches=False)
        assert ok.verdict() == "matches"
        assert bad.verdict() == "DEVIATES"

    def test_markdown_contains_fields(self):
        r = ExperimentRecord(
            "FIG3A",
            "selected decay",
            "decays",
            "decayed 49 -> 2",
            matches=True,
            details={"seed": 1},
        )
        md = r.to_markdown()
        assert "FIG3A" in md
        assert "decays" in md
        assert "seed=1" in md

    def test_render_report(self):
        recs = [
            ExperimentRecord("A", "first", "p", "m", True),
            ExperimentRecord("B", "second", "p", "m", False),
        ]
        rep = render_report("Title", recs)
        assert rep.startswith("# Title")
        assert "DEVIATES" in rep
        assert "| A | first | matches |" in rep
