"""Unit tests for convergence analytics."""

import pytest

from repro.analysis.convergence import (
    iterations_to_within,
    normalized_auc,
    speedup_to_reach,
    stagnation,
    time_to_target,
)
from repro.analysis.trace import ConvergenceTrace, IterationRecord


def trace_from(bests, elapsed=None):
    t = ConvergenceTrace()
    for i, b in enumerate(bests, start=1):
        t.append(
            IterationRecord(
                iteration=i,
                current_makespan=b,
                best_makespan=b,
                elapsed_seconds=(elapsed[i - 1] if elapsed else 0.1 * i),
            )
        )
    return t


class TestTimeToTarget:
    def test_reached(self):
        t = trace_from([100, 90, 80], elapsed=[1.0, 2.0, 3.0])
        assert time_to_target(t, 90) == 2.0

    def test_first_record_qualifies(self):
        t = trace_from([50], elapsed=[1.5])
        assert time_to_target(t, 60) == 1.5

    def test_never_reached(self):
        t = trace_from([100, 90])
        assert time_to_target(t, 10) is None


class TestIterationsToWithin:
    def test_within_fraction(self):
        t = trace_from([120, 105, 100])
        # 5% of final best 100 = 105 -> iteration 2
        assert iterations_to_within(t, 0.05) == 2

    def test_zero_fraction_is_final(self):
        t = trace_from([120, 105, 100])
        assert iterations_to_within(t, 0.0) == 3

    def test_empty_trace(self):
        assert iterations_to_within(ConvergenceTrace(), 0.1) is None

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            iterations_to_within(trace_from([1.0]), -0.1)


class TestNormalizedAuc:
    def test_instant_convergence_is_one(self):
        assert normalized_auc(trace_from([50, 50, 50])) == pytest.approx(1.0)

    def test_late_convergence_larger(self):
        late = trace_from([100, 100, 50])
        early = trace_from([50, 50, 50])
        assert normalized_auc(late) > normalized_auc(early)

    def test_exact_value(self):
        t = trace_from([100, 50])
        assert normalized_auc(t) == pytest.approx(150 / (50 * 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            normalized_auc(ConvergenceTrace())


class TestStagnation:
    def test_monotone_run_no_stagnation(self):
        s = stagnation(trace_from([100, 90, 80]))
        assert s.longest_streak == 0
        assert s.improvements == 3
        assert s.final_streak == 0
        assert s.total_iterations == 3

    def test_flat_run_all_stagnation(self):
        s = stagnation(trace_from([100, 100, 100]))
        assert s.improvements == 1  # the first record counts
        assert s.longest_streak == 2
        assert s.final_streak == 2

    def test_interior_plateau(self):
        s = stagnation(trace_from([100, 100, 100, 90]))
        assert s.longest_streak == 2
        assert s.final_streak == 0
        assert s.improvements == 2

    def test_improved_fraction(self):
        s = stagnation(trace_from([100, 90, 90, 90]))
        assert s.improved_fraction == pytest.approx(0.5)


class TestSpeedupToReach:
    def test_basic_ratio(self):
        fast = trace_from([100, 50], elapsed=[1.0, 2.0])
        slow = trace_from([100, 50], elapsed=[1.0, 8.0])
        assert speedup_to_reach(fast, slow, 50) == pytest.approx(4.0)

    def test_none_when_unreached(self):
        fast = trace_from([100], elapsed=[1.0])
        slow = trace_from([100, 50], elapsed=[1.0, 8.0])
        assert speedup_to_reach(fast, slow, 50) is None


class TestOnRealRuns:
    def test_se_run_analytics(self, tiny_workload):
        from repro.core import SEConfig, run_se

        res = run_se(tiny_workload, SEConfig(seed=1, max_iterations=40))
        auc = normalized_auc(res.trace)
        assert auc >= 1.0
        stats = stagnation(res.trace)
        assert stats.improvements >= 1
        assert stats.total_iterations == 40
        within = iterations_to_within(res.trace, 0.10)
        assert 1 <= within <= 40
