"""Tests for runner configuration plumbing in the comparison harness."""

from repro.analysis.compare import (
    COMPARISON_SE_BIAS,
    ga_runner,
    se_runner,
    se_vs_ga,
)
from repro.baselines import GAConfig
from repro.core import SEConfig


class TestSeRunnerConfig:
    def test_base_config_respected(self, tiny_workload):
        """Custom Y propagates: Y=1 forces best-machine assignments,
        visible through determinism of the outcome vs another Y."""
        trace_y1 = se_runner(SEConfig(y_candidates=1, seed=1), seed=1)(
            tiny_workload, 0.2
        )
        trace_all = se_runner(SEConfig(seed=1), seed=1)(tiny_workload, 0.2)
        assert len(trace_y1) > 0 and len(trace_all) > 0

    def test_seed_overrides_base_seed(self, tiny_workload):
        base = SEConfig(seed=1)
        a = se_runner(base, seed=7)(tiny_workload, 0.15)
        b = se_runner(base, seed=7)(tiny_workload, 0.15)
        # same explicit seed -> same iteration-indexed makespans
        n = min(len(a), len(b))
        assert a.current_makespans()[:n] == b.current_makespans()[:n]

    def test_time_limit_binding(self, tiny_workload):
        trace = se_runner(SEConfig(seed=1, max_iterations=5))(tiny_workload, 0.3)
        # the runner lifts the iteration cap; must exceed 5 iterations
        assert len(trace) > 5


class TestGaRunnerConfig:
    def test_stall_disabled(self, tiny_workload):
        """The runner must disable the stall rule so the wall clock is
        binding (Wang's 150-generation stop would end tiny runs early)."""
        trace = ga_runner(GAConfig(seed=1, stall_generations=2))(
            tiny_workload, 0.3
        )
        assert len(trace) > 10

    def test_population_size_respected(self, tiny_workload):
        small = ga_runner(GAConfig(seed=1, population_size=4))(tiny_workload, 0.15)
        big = ga_runner(GAConfig(seed=1, population_size=64))(tiny_workload, 0.15)
        # smaller populations complete more generations per second
        assert len(small) > len(big)


class TestSeVsGaDefaults:
    def test_default_bias_constant(self):
        assert COMPARISON_SE_BIAS == -0.1

    def test_explicit_config_overrides_default(self, tiny_workload):
        res = se_vs_ga(
            tiny_workload,
            time_budget=0.2,
            se_config=SEConfig(selection_bias=0.1),
            grid_points=3,
            seed=2,
        )
        assert {s.name for s in res.series} == {"SE", "GA"}
