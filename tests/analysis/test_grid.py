"""Unit tests for the grid experiment runner."""

import pytest

from repro.analysis.grid import GridCellResult, GridResult, run_grid
from repro.baselines import heft, olb
from repro.workloads import WorkloadSuite


@pytest.fixture(scope="module")
def small_suite():
    return WorkloadSuite(
        num_tasks=12,
        num_machines=3,
        connectivities=("low", "high"),
        heterogeneities=("low", "high"),
        ccrs=(0.1, 1.0),
        replicates=1,
        seed=4,
    )


@pytest.fixture(scope="module")
def grid(small_suite):
    return run_grid(
        small_suite,
        {
            "HEFT": lambda w: heft(w).makespan,
            "OLB": lambda w: olb(w).makespan,
        },
    )


class TestRunGrid:
    def test_cell_count(self, grid, small_suite):
        assert len(grid.cells) == len(small_suite) * 2

    def test_algorithms_listed_in_order(self, grid):
        assert grid.algorithms == ["HEFT", "OLB"]

    def test_empty_algorithms_rejected(self, small_suite):
        with pytest.raises(ValueError, match="algorithm"):
            run_grid(small_suite, {})

    def test_normalized_at_least_one(self, grid):
        for c in grid.cells:
            assert c.normalized >= 1.0 - 1e-9


class TestAggregation:
    def test_win_loss_total_counts(self, grid, small_suite):
        rec = grid.win_loss("HEFT", "OLB")
        assert rec.n == len(small_suite)

    def test_win_loss_axis_restriction(self, grid):
        rec = grid.win_loss("HEFT", "OLB", connectivity="low")
        assert rec.n == 4  # 1 conn value x 2 het x 2 ccr

    def test_win_loss_ccr_restriction(self, grid):
        rec = grid.win_loss("HEFT", "OLB", ccr=1.0)
        assert rec.n == 4

    def test_heft_beats_olb_overall(self, grid):
        assert grid.win_loss("HEFT", "OLB").win_rate() >= 0.5

    def test_geomean_normalized(self, grid):
        assert grid.geomean_normalized("HEFT") <= grid.geomean_normalized("OLB")

    def test_geomean_unknown_algorithm(self, grid):
        with pytest.raises(KeyError, match="mystery"):
            grid.geomean_normalized("mystery")

    def test_league_table_sorted(self, grid):
        league = grid.league_table()
        assert len(league) == 2
        assert league[0][1] <= league[1][1]

    def test_axis_report_structure(self, grid):
        report = grid.axis_report("HEFT", "OLB")
        assert "| connectivity | " in report
        assert "| heterogeneity | " in report
        assert "| CCR | " in report
        # 2 values per axis, 3 axes
        assert report.count("HEFT") >= 1
        assert len(report.splitlines()) == 2 + 6


class TestTieHandling:
    def test_identical_algorithms_all_ties(self, small_suite):
        grid = run_grid(
            small_suite,
            {
                "A": lambda w: heft(w).makespan,
                "B": lambda w: heft(w).makespan,
            },
        )
        rec = grid.win_loss("A", "B")
        assert rec.ties == rec.n
        assert rec.win_rate() == 0.5

    def test_near_ties_within_tolerance(self):
        grid = GridResult(
            cells=[
                GridCellResult("w0", "low", "low", 0.1, "A", 100.0, 1.0),
                GridCellResult("w0", "low", "low", 0.1, "B", 100.05, 1.0),
            ]
        )
        assert grid.win_loss("A", "B", rel_tol=1e-3).ties == 1
        assert grid.win_loss("A", "B", rel_tol=1e-6).wins == 1
