"""Unit tests for the time-budget comparison harness."""

import math

import pytest

from repro.analysis.compare import (
    ComparisonSeries,
    compare_algorithms,
    ga_runner,
    make_time_grid,
    se_runner,
    se_vs_ga,
)
from repro.analysis.trace import ConvergenceTrace, IterationRecord


def fake_runner(values_at):
    """Runner returning a synthetic trace: list of (elapsed, best)."""

    def run(workload, time_limit):
        t = ConvergenceTrace()
        for i, (elapsed, best) in enumerate(values_at, start=1):
            t.append(
                IterationRecord(
                    iteration=i,
                    current_makespan=best,
                    best_makespan=best,
                    elapsed_seconds=elapsed,
                )
            )
        return t

    return run


class TestMakeTimeGrid:
    def test_points_and_endpoint(self):
        grid = make_time_grid(10.0, 5)
        assert grid == (2.0, 4.0, 6.0, 8.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            make_time_grid(0.0, 5)
        with pytest.raises(ValueError, match="points"):
            make_time_grid(1.0, 0)


class TestCompareAlgorithms:
    def test_sampling_on_grid(self, tiny_workload):
        runners = {
            "A": fake_runner([(0.1, 100.0), (0.5, 80.0), (0.9, 60.0)]),
            "B": fake_runner([(0.3, 90.0), (0.7, 50.0)]),
        }
        res = compare_algorithms(tiny_workload, runners, time_budget=1.0, grid_points=4)
        a = res.by_name("A")
        assert a.best_at == (100.0, 80.0, 80.0, 60.0)
        b = res.by_name("B")
        # B's record at 0.7s lands inside the 0.75s grid point
        assert b.best_at == (math.inf, 90.0, 50.0, 50.0)

    def test_winner_at(self, tiny_workload):
        runners = {
            "A": fake_runner([(0.1, 100.0)]),
            "B": fake_runner([(0.1, 90.0)]),
        }
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=2)
        assert res.winner_at(0) == "B"
        assert res.final_winner() == "B"

    def test_tie_returns_none(self, tiny_workload):
        runners = {
            "A": fake_runner([(0.1, 90.0)]),
            "B": fake_runner([(0.1, 90.0)]),
        }
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=1)
        assert res.winner_at(0) is None

    def test_no_data_returns_none(self, tiny_workload):
        runners = {"A": fake_runner([]), "B": fake_runner([])}
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=1)
        assert res.winner_at(0) is None

    def test_advantage_ratio(self, tiny_workload):
        runners = {
            "A": fake_runner([(0.1, 50.0)]),
            "B": fake_runner([(0.1, 100.0)]),
        }
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=1)
        assert res.advantage("A", "B") == [pytest.approx(2.0)]

    def test_advantage_nan_when_missing(self, tiny_workload):
        runners = {
            "A": fake_runner([]),
            "B": fake_runner([(0.1, 100.0)]),
        }
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=1)
        assert math.isnan(res.advantage("A", "B")[0])

    def test_unknown_series_name(self, tiny_workload):
        runners = {"A": fake_runner([(0.1, 1.0)])}
        res = compare_algorithms(tiny_workload, runners, 1.0, grid_points=1)
        with pytest.raises(KeyError):
            res.by_name("Z")

    def test_empty_runners_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="runner"):
            compare_algorithms(tiny_workload, {}, 1.0)

    def test_first_finite_index(self):
        s = ComparisonSeries(
            name="x",
            time_grid=(1.0, 2.0),
            best_at=(math.inf, 5.0),
            final_best=5.0,
            iterations=1,
        )
        assert s.first_finite_index() == 1


class TestRealRunners:
    def test_se_runner_respects_budget(self, tiny_workload):
        trace = se_runner(seed=1)(tiny_workload, 0.3)
        assert len(trace) > 0
        assert trace.elapsed()[-1] <= 0.6  # small overshoot slack

    def test_ga_runner_respects_budget(self, tiny_workload):
        trace = ga_runner(seed=1)(tiny_workload, 0.3)
        assert len(trace) > 0
        assert trace.elapsed()[-1] <= 0.6

    def test_se_vs_ga_end_to_end(self, tiny_workload):
        res = se_vs_ga(tiny_workload, time_budget=0.4, grid_points=4, seed=2)
        names = {s.name for s in res.series}
        assert names == {"SE", "GA"}
        for s in res.series:
            finite = [v for v in s.best_at if math.isfinite(v)]
            assert finite, "each algorithm produced at least one solution"
            # best-so-far curves are monotone non-increasing
            assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(finite, finite[1:]))

    def test_winner_timeline_length(self, tiny_workload):
        res = se_vs_ga(tiny_workload, time_budget=0.3, grid_points=5, seed=2)
        assert len(res.winner_timeline()) == 5

    def test_compare_named_under_nic(self, tiny_workload):
        from repro.analysis.compare import compare_named

        res = compare_named(
            tiny_workload,
            ["se", "tabu"],
            time_budget=0.2,
            grid_points=3,
            seed=1,
            network="nic",
        )
        assert {s.name for s in res.series} == {"SE", "TABU"}
        for s in res.series:
            assert any(math.isfinite(v) for v in s.best_at)


class TestHeadToHeadNetwork:
    def test_network_threads_to_known_kinds(self, tiny_workload):
        from repro.analysis.compare import head_to_head_experiment
        from repro.workloads import WorkloadSpec

        spec = WorkloadSpec(
            num_tasks=6, num_machines=2, seed=3, name="h2h-nic"
        )
        res = head_to_head_experiment(
            spec,
            time_budget=0.2,
            algorithms={"SE": {}, "HEFT": {}},
            grid_points=3,
            seed=1,
            network="nic",
        )
        assert {s.name for s in res.series} == {"SE", "HEFT"}

    def test_network_skipped_for_algorithms_without_parameter(
        self, tiny_workload, tmp_path
    ):
        """A custom-registered algorithm that declares no ``network``
        parameter must keep working when the harness-wide network is
        set (the selector is only injected where it is accepted)."""
        from repro.analysis.compare import head_to_head_experiment
        from repro.runner import registry
        from repro.workloads import WorkloadSpec

        if "nonet" not in registry.available_algorithms():

            @registry.register_algorithm("nonet")
            def _nonet(workload, seed, params):
                from repro.baselines import olb

                assert "network" not in params  # nothing injected
                res = olb(workload)
                return registry.CellOutcome(
                    makespan=res.makespan, evaluations=res.evaluations
                )

        spec = WorkloadSpec(
            num_tasks=6, num_machines=2, seed=3, name="h2h-nonet"
        )
        res = head_to_head_experiment(
            spec,
            time_budget=0.2,
            algorithms={"NONET": {"kind": "nonet"}},
            grid_points=3,
            seed=1,
            network="nic",
        )
        assert {s.name for s in res.series} == {"NONET"}
