"""Unit tests for convergence traces."""

import math

import pytest

from repro.analysis.trace import ConvergenceTrace, IterationRecord, downsample


def make_trace(n=5):
    t = ConvergenceTrace()
    for i in range(1, n + 1):
        t.append(
            IterationRecord(
                iteration=i,
                current_makespan=100.0 - i,
                best_makespan=100.0 - i,
                num_selected=n - i,
                elapsed_seconds=0.1 * i,
                mean_goodness=0.5,
                evaluations=10 * i,
            )
        )
    return t


class TestAppendAndAccess:
    def test_length(self):
        assert len(make_trace(5)) == 5

    def test_getitem(self):
        t = make_trace(3)
        assert t[0].iteration == 1
        assert t[-1].iteration == 3

    def test_iteration_must_increase(self):
        t = make_trace(2)
        with pytest.raises(ValueError, match="increase"):
            t.append(
                IterationRecord(
                    iteration=2, current_makespan=1.0, best_makespan=1.0
                )
            )

    def test_construct_from_records(self):
        t = make_trace(3)
        t2 = ConvergenceTrace(t.records)
        assert len(t2) == 3


class TestSeries:
    def test_iterations(self):
        assert make_trace(3).iterations() == [1, 2, 3]

    def test_selected_counts(self):
        assert make_trace(3).selected_counts() == [2, 1, 0]

    def test_selected_counts_requires_values(self):
        t = ConvergenceTrace()
        t.append(IterationRecord(iteration=1, current_makespan=1.0, best_makespan=1.0))
        with pytest.raises(ValueError, match="num_selected"):
            t.selected_counts()

    def test_makespans(self):
        t = make_trace(3)
        assert t.current_makespans() == [99.0, 98.0, 97.0]
        assert t.best_makespans() == [99.0, 98.0, 97.0]

    def test_elapsed(self):
        assert make_trace(2).elapsed() == pytest.approx([0.1, 0.2])

    def test_final_best(self):
        assert make_trace(4).final_best() == 96.0

    def test_final_best_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ConvergenceTrace().final_best()

    def test_improvement_ratio(self):
        assert make_trace(2).improvement_ratio() == pytest.approx(99.0 / 98.0)

    def test_to_rows(self):
        rows = make_trace(2).to_rows()
        assert rows[0]["iteration"] == 1
        assert rows[1]["best_makespan"] == 98.0


class TestBestAtTime:
    def test_before_first_record_inf(self):
        t = make_trace(3)
        assert math.isinf(t.best_at_time(0.05))

    def test_interior_point(self):
        t = make_trace(5)
        assert t.best_at_time(0.25) == 98.0  # records at 0.1 and 0.2 seen

    def test_after_end(self):
        t = make_trace(5)
        assert t.best_at_time(100.0) == 95.0


class TestDownsample:
    def test_short_trace_unchanged(self):
        t = make_trace(3)
        assert len(downsample(t, 10)) == 3

    def test_thins_to_max_points(self):
        t = make_trace(100)
        d = downsample(t, 10)
        assert len(d) <= 10

    def test_keeps_endpoints(self):
        t = make_trace(100)
        d = downsample(t, 10)
        assert d[0].iteration == 1
        assert d[-1].iteration == 100

    def test_min_points_validated(self):
        with pytest.raises(ValueError, match="max_points"):
            downsample(make_trace(5), 1)
