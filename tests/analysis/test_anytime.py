"""Unit tests for the anytime-curve analysis helpers."""

import math

import pytest

from repro.analysis import anytime_auc, anytime_table, best_at, first_time_to
from repro.portfolio import RaceConfig, run_race
from repro.workloads import small_workload

EVENTS = [(0.5, 100.0), (1.0, 60.0), (3.0, 40.0)]


class TestBestAt:
    def test_inf_before_first_event(self):
        assert best_at(EVENTS, 0.0) == math.inf

    def test_steps_hold_between_events(self):
        assert best_at(EVENTS, 0.5) == 100.0
        assert best_at(EVENTS, 0.99) == 100.0
        assert best_at(EVENTS, 1.0) == 60.0
        assert best_at(EVENTS, 100.0) == 40.0

    def test_empty_curve(self):
        assert best_at([], 1.0) == math.inf


class TestFirstTimeTo:
    def test_first_crossing(self):
        assert first_time_to(EVENTS, 100.0) == 0.5
        assert first_time_to(EVENTS, 59.0) == 3.0

    def test_unreached_target(self):
        assert first_time_to(EVENTS, 39.9) is None
        assert first_time_to([], 10.0) is None


class TestAnytimeAuc:
    def test_instant_curve_scores_one(self):
        assert anytime_auc([(0.0, 50.0)], 2.0) == 1.0

    def test_late_quality_scores_above_one(self):
        # 100 for 1 s then 50 for 1 s: mean 75 over final 50
        assert anytime_auc([(0.0, 100.0), (1.0, 50.0)], 2.0) == 1.5

    def test_pre_first_event_stretch_uses_baseline(self):
        # explicit baseline 200 for the first second, then 100, then 50
        got = anytime_auc(
            [(1.0, 100.0), (2.0, 50.0)], 3.0, baseline=200.0
        )
        assert got == pytest.approx((200 + 100 + 50) / 3 / 50)

    def test_events_after_horizon_ignored(self):
        got = anytime_auc([(0.0, 100.0), (5.0, 1.0)], 2.0)
        assert got == 1.0  # flat at 100 across the whole horizon

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            anytime_auc([], 1.0)
        with pytest.raises(ValueError, match="horizon"):
            anytime_auc(EVENTS, 0.0)


class TestAnytimeTable:
    def test_table_shape(self):
        res = run_race(
            small_workload(seed=3),
            RaceConfig(
                engines=("se", "tabu"),
                islands=2,
                deadline=None,
                max_iterations=4,
                sync_every=2,
                seed=1,
            ),
        )
        table = anytime_table(res)
        lines = table.splitlines()
        assert "island" in lines[0] and "engine" in lines[0]
        # one row per island plus header, two rules, and the race row
        assert len(lines) == len(res.islands) + 4
        assert lines[-1].lstrip().startswith("race")
        # exactly one winner mark, on the winning island's row
        marked = [ln for ln in lines if ln.endswith("*")]
        assert len(marked) == 1
        assert marked[0].lstrip().startswith(str(res.best_island))
