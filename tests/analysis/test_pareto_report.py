"""The reporting end of the Pareto pipeline: front / pick / table."""

import pytest

from repro.analysis.pareto import cheapest_within, pareto_front, pareto_table
from repro.optim.tracking import ParetoPoint
from repro.schedule.scoring import ScheduleScore

POINTS = [(10.0, 5.0), (12.0, 3.0), (11.0, 6.0), (10.0, 5.0), (15.0, 1.0)]


class TestParetoFront:
    def test_filters_to_non_dominated(self):
        front = pareto_front(POINTS)
        assert [(p.makespan, p.cost) for p in front] == [
            (10.0, 5.0),
            (12.0, 3.0),
            (15.0, 1.0),
        ]

    def test_accepts_mixed_input_shapes(self):
        score = ScheduleScore(makespan=9.0, cost=7.0, busy=(1.0,))
        front = pareto_front(
            [
                (10.0, 5.0, "pair-candidate"),
                ParetoPoint(12.0, 3.0, candidate="pp"),
                score,  # attribute-carrying objects become candidates
            ]
        )
        by_span = {p.makespan: p.candidate for p in front}
        assert by_span == {9.0: score, 10.0: "pair-candidate", 12.0: "pp"}

    def test_rejects_uninterpretable_items(self):
        with pytest.raises(TypeError, match="point"):
            pareto_front([(1.0,)])

    def test_empty_input_empty_front(self):
        assert pareto_front([]) == []


class TestCheapestWithin:
    def test_picks_cheapest_in_the_slack_band(self):
        # 12.0 is within 1.2x of 10.0; 15.0 (cheapest overall) is not
        pick = cheapest_within(POINTS, factor=1.2)
        assert (pick.makespan, pick.cost) == (12.0, 3.0)
        # widening the band reaches the cheaper point
        assert cheapest_within(POINTS, factor=1.5).cost == 1.0
        # factor 1.0: only the best-makespan point qualifies
        assert cheapest_within(POINTS, factor=1.0).makespan == 10.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="factor"):
            cheapest_within(POINTS, factor=0.9)
        with pytest.raises(ValueError, match="points"):
            cheapest_within([])

    def test_input_need_not_be_a_front(self):
        # dominated points are filtered before the pick
        pick = cheapest_within([(10.0, 5.0), (10.5, 9.0)], factor=2.0)
        assert pick.cost == 5.0


class TestParetoTable:
    def test_columns_and_relative_span(self):
        table = pareto_table(POINTS)
        lines = table.splitlines()
        assert "makespan" in lines[0] and "cost (usd)" in lines[0]
        assert "cost vs ref" not in lines[0]
        assert "| 10.000 | 5.0000 | 1.000x |" in table
        assert "| 12.000 | 3.0000 | 1.200x |" in table

    def test_reference_column_reports_savings(self):
        ref = ParetoPoint(10.0, 5.0)
        table = pareto_table(POINTS, reference=ref)
        assert "cost vs ref" in table
        assert "+40.0%" in table  # (12.0, 3.0) vs ref cost 5.0
        assert "+0.0%" in table  # the reference row itself

    def test_label_column(self):
        table = pareto_table(
            [(10.0, 5.0, "heft"), (12.0, 3.0, "sa")],
            label=lambda p: str(p.candidate),
        )
        assert table.splitlines()[0].startswith("| schedule |")
        assert "| sa | 12.000" in table

    def test_empty_front_renders_headers_only(self):
        assert "makespan" in pareto_table([])
