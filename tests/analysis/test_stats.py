"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    WinLossRecord,
    geometric_mean,
    makespan_ratio,
    summarize,
    win_loss,
)


class TestSummarize:
    def test_basic_mean_std(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.n == 3
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_single_sample_collapses(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_ci_contains_mean(self):
        s = summarize([3.0, 4.0, 5.0, 6.0])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_width_grows_with_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = summarize(data, confidence=0.5)
        wide = summarize(data, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_ci_95_matches_normal_quantile(self):
        # z(95%) = 1.95996...; ci half-width = z * std / sqrt(n)
        s = summarize([0.0, 2.0], confidence=0.95)
        half = 1.959964 * s.std / math.sqrt(2)
        assert (s.ci_high - s.mean) == pytest.approx(half, rel=1e-4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError, match="confidence"):
            summarize([1.0], confidence=1.0)

    def test_describe(self):
        assert "n=2" in summarize([1.0, 2.0]).describe()


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="nothing"):
            geometric_mean([])


class TestMakespanRatio:
    def test_candidate_better_gives_gt_one(self):
        assert makespan_ratio(100.0, 50.0) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            makespan_ratio(0.0, 5.0)
        with pytest.raises(ValueError):
            makespan_ratio(5.0, 0.0)


class TestWinLoss:
    def test_counts(self):
        r = win_loss([1.0, 2.0, 3.0], [2.0, 2.0, 2.0])
        assert (r.wins, r.ties, r.losses) == (1, 1, 1)
        assert r.n == 3

    def test_win_rate(self):
        r = win_loss([1.0, 1.0, 3.0], [2.0, 2.0, 2.0])
        assert r.win_rate() == pytest.approx(2 / 3)

    def test_all_ties_win_rate_half(self):
        r = win_loss([1.0], [1.0])
        assert r.win_rate() == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            win_loss([1.0], [1.0, 2.0])

    def test_describe(self):
        assert WinLossRecord(2, 1, 0).describe() == "2W-1T-0L"
