#!/usr/bin/env python
"""Portfolio race: the best schedule this machine can find in ~2 seconds.

Races SE, GA, SA and tabu concurrently on one workload, sharing each
new best-so-far schedule through the incumbent channel, and reports the
global winner with per-island and combined anytime curves.  The same
race is available from the command line::

    repro race --preset small --deadline 2 --engines se,ga,sa,tabu

Run:  python examples/portfolio_race.py
"""

from repro.analysis import anytime_auc, anytime_table
from repro.portfolio import RaceConfig, run_race
from repro.workloads import WorkloadSpec, build_workload


def main() -> None:
    workload = build_workload(
        WorkloadSpec(
            num_tasks=50,
            num_machines=10,
            connectivity="medium",
            heterogeneity="medium",
            ccr=0.5,
            seed=2024,
            name="race-demo",
        )
    )

    # 1. The anytime question: best schedule within a 1-second deadline
    #    per island.  Process mode gives each island its own core (and
    #    its own warmed-up kernel tier); islands=0 means one island per
    #    engine kind.
    config = RaceConfig(
        engines=("se", "ga", "sa", "tabu"),
        deadline=1.0,
        seed=7,
    )
    result = run_race(workload, config)

    print(
        f"raced {len(result.islands)} islands on {result.workload!r}: "
        f"best makespan {result.best_makespan:.1f} from island "
        f"{result.best_island} ({result.best_kind})\n"
    )
    print(anytime_table(result))

    # 2. The combined anytime curve: how fast quality arrived on the
    #    race-global clock (1.0 == final quality instantly).
    curve = result.combined_anytime()
    horizon = max(t for t, _ in curve) + 0.01
    print(
        f"\ncombined curve: {len(curve)} improvements, "
        f"normalized AUC {anytime_auc(curve, horizon):.3f}"
    )

    # 3. Deterministic replay: a lockstep race (sync_every) trades the
    #    wall clock for an iteration budget, making every incumbent
    #    exchange a pure function of seeds — run it twice, get the same
    #    schedule bit for bit.
    lockstep = RaceConfig(
        engines=("se", "tabu"),
        islands=2,
        deadline=None,
        max_iterations=30,
        sync_every=5,
        seed=7,
    )
    a = run_race(workload, lockstep)
    b = run_race(workload, lockstep)
    assert a.best_string == b.best_string
    print(
        f"\nlockstep replay: best {a.best_makespan:.1f} == "
        f"{b.best_makespan:.1f} (bit-identical across runs)"
    )


if __name__ == "__main__":
    main()
