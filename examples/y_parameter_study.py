#!/usr/bin/env python
"""The Y-parameter study of §5.2 (Figures 4a/4b), at a configurable scale.

Y limits how many best-matching machines the SE allocation step may try
per relocated subtask.  The paper's finding: with *low* heterogeneity
larger Y is simply better; with *high* heterogeneity an intermediate Y
wins over the first ~1000 iterations.

Run:  python examples/y_parameter_study.py [--iterations N]
"""

import argparse

from repro.analysis import Series, line_plot
from repro.core import SEConfig, run_se
from repro.workloads import figure4a_workload, figure4b_workload


def study(workload, label, y_values, iterations, seed):
    print(f"\n=== {label}: {workload.name} ===")
    series = []
    finals = {}
    for y in y_values:
        # bias -0.1 sustains selection pressure so Y actually matters
        # (with the §4.4 positive large-problem bias, goodness saturates
        # and every Y converges to the same local optimum)
        res = run_se(
            workload,
            SEConfig(
                seed=seed,
                max_iterations=iterations,
                y_candidates=y,
                selection_bias=-0.1,
            ),
        )
        tr = res.trace
        series.append(Series(f"Y={y}", tr.iterations(), tr.best_makespans()))
        finals[y] = res.best_makespan
        print(
            f"  Y={y:>2}: best={res.best_makespan:9.1f}  "
            f"evaluations={res.evaluations}"
        )
    print()
    print(
        line_plot(
            series,
            title=f"effect of Y — {label}",
            x_label="iteration",
            y_label="best schedule length",
        )
    )
    return finals


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iterations", type=int, default=120)
    ap.add_argument("--seed", type=int, default=5)
    args = ap.parse_args()

    y_values = (5, 9, 12)  # the values Figure 4 plots, out of 20 machines

    lo = study(
        figure4a_workload(seed=args.seed),
        "low heterogeneity (Fig. 4a)",
        y_values,
        args.iterations,
        args.seed,
    )
    hi = study(
        figure4b_workload(seed=args.seed),
        "high heterogeneity (Fig. 4b)",
        y_values,
        args.iterations,
        args.seed,
    )

    print("\nsummary (lower is better):")
    print(f"  low het : {lo}")
    print(f"  high het: {hi}")
    print(
        "\npaper's finding: Fig. 4a — quality improves with Y; "
        "Fig. 4b — the best Y is intermediate (9 of 20), larger Y can be "
        "worse early on because more low-quality combinations are visited."
    )


if __name__ == "__main__":
    main()
