#!/usr/bin/env python
"""Tour of every scheduler in the library across a workload grid.

Runs SE, the GA, HEFT, Min-min, Max-min, OLB and random search on a
small suite spanning the paper's three classification axes, and prints a
normalized-makespan league table (1.0 = theoretical lower bound).

Run:  python examples/baseline_tour.py
"""

from collections import defaultdict

from repro.analysis import geometric_mean, markdown_table
from repro.baselines import (
    GAConfig,
    heft,
    max_min,
    min_min,
    olb,
    random_search,
    run_ga,
)
from repro.core import SEConfig, run_se
from repro.schedule.metrics import normalized_makespan
from repro.workloads import smoke_suite


def main() -> None:
    algorithms = {
        "SE": lambda w: run_se(w, SEConfig(seed=1, max_iterations=60)).best_makespan,
        "GA": lambda w: run_ga(
            w, GAConfig(seed=1, max_generations=60, stall_generations=None)
        ).best_makespan,
        "HEFT": lambda w: heft(w).makespan,
        "Min-min": lambda w: min_min(w).makespan,
        "Max-min": lambda w: max_min(w).makespan,
        "OLB": lambda w: olb(w).makespan,
        "Random": lambda w: random_search(w, samples=300, seed=1).makespan,
    }

    slr = defaultdict(list)  # algorithm -> normalized makespans
    rows = []
    for cell in smoke_suite(seed=99):
        w = cell.build()
        row = [w.classification.describe()]
        for name, fn in algorithms.items():
            m = fn(w)
            n = normalized_makespan(w, m)
            slr[name].append(n)
            row.append(f"{n:.2f}")
        rows.append(row)

    print("normalized makespan per workload (1.0 = lower bound):\n")
    print(markdown_table(["workload"] + list(algorithms), rows))

    print("\ngeometric-mean normalized makespan (lower is better):")
    league = sorted(
        (geometric_mean(vals), name) for name, vals in slr.items()
    )
    for score, name in league:
        print(f"  {name:8s} {score:.3f}")


if __name__ == "__main__":
    main()
