#!/usr/bin/env python
"""How fragile is the paper's contention-free network assumption?

The HC model (paper §2, after Wang et al.) lets every data transfer start
the instant its producer finishes.  This study re-evaluates schedules
under the library's one-NIC-per-machine contention model
(`repro.extensions.contention`) and reports the makespan penalty across
the CCR axis — and shows that warm-starting SE from HEFT
(`repro.extensions.hybrid`) is free insurance.

Run:  python examples/contention_study.py
"""

from repro.analysis import markdown_table
from repro.baselines import heft
from repro.core import SEConfig, run_se
from repro.extensions import (
    ContentionSimulator,
    contention_penalty,
    heft_seeded_se,
)
from repro.workloads import WorkloadSpec, build_workload


def main() -> None:
    rows = []
    for ccr in (0.1, 0.5, 1.0):
        w = build_workload(
            WorkloadSpec(num_tasks=50, num_machines=8, ccr=ccr, seed=13)
        )
        h = heft(w)
        se = run_se(w, SEConfig(seed=2, max_iterations=80))
        rows.append(
            (
                f"{ccr:g}",
                f"{h.makespan:.0f}",
                f"{contention_penalty(w, h.string):.1%}",
                f"{se.best_makespan:.0f}",
                f"{contention_penalty(w, se.best_string):.1%}",
            )
        )
    print("makespan penalty when each machine has a single outgoing link:\n")
    print(
        markdown_table(
            ["CCR", "HEFT", "HEFT penalty", "SE", "SE penalty"], rows
        )
    )

    # a closer look at one schedule's transfer queue
    w = build_workload(WorkloadSpec(num_tasks=20, num_machines=4, ccr=1.0, seed=3))
    se = run_se(w, SEConfig(seed=2, max_iterations=60))
    res = ContentionSimulator(w).evaluate(se.best_string)
    print(
        f"\nSE schedule on a CCR=1 workload: {len(res.transfers)} "
        f"cross-machine transfers, makespan {res.makespan:.0f} "
        f"(contention-free: {se.best_makespan:.0f})"
    )
    for m in range(w.num_machines):
        print(f"  m{m} NIC busy {res.nic_busy_time(m):7.1f}")

    # the backend is pluggable, so SE can optimise *under* contention
    # instead of discovering the penalty after the fact
    w = build_workload(WorkloadSpec(num_tasks=50, num_machines=8, ccr=1.0, seed=13))
    free = run_se(w, SEConfig(seed=2, max_iterations=80))
    aware = run_se(w, SEConfig(seed=2, max_iterations=80, network="nic"))
    nic = ContentionSimulator(w)
    print(
        f"\noptimise contention-free, evaluate under NICs: "
        f"{nic.string_makespan(free.best_string):.0f}"
    )
    print(
        f"optimise under NICs directly (network='nic'):  "
        f"{aware.best_makespan:.0f}"
    )

    # warm starts
    print("\nHEFT-seeded SE (never worse than HEFT by construction):")
    for seed in (1, 2, 3):
        w = build_workload(WorkloadSpec(num_tasks=60, num_machines=10, seed=40 + seed))
        base = heft(w).makespan
        warm = heft_seeded_se(w, SEConfig(seed=seed, max_iterations=40))
        print(
            f"  seed {40 + seed}: HEFT {base:8.1f} -> warm SE "
            f"{warm.best_makespan:8.1f} "
            f"({(1 - warm.best_makespan / base):.1%} better)"
        )


if __name__ == "__main__":
    main()
