#!/usr/bin/env python
"""Quickstart: define a workload, run Simulated Evolution, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import SEConfig, compute_metrics, run_se
from repro.schedule import Timeline
from repro.workloads import WorkloadSpec, build_workload


def main() -> None:
    # 1. Describe the problem along the paper's three axes: connectivity,
    #    heterogeneity and communication-to-cost ratio (CCR).
    spec = WorkloadSpec(
        num_tasks=30,
        num_machines=6,
        connectivity="medium",
        heterogeneity="medium",
        ccr=0.5,
        seed=2024,
        name="quickstart",
    )
    workload = build_workload(spec)
    print(workload.describe())

    # 2. Run Simulated Evolution.  The config mirrors the paper's knobs:
    #    selection bias B and machine-candidate count Y.
    config = SEConfig(seed=7, max_iterations=150, y_candidates=4)
    result = run_se(workload, config)
    print(
        f"\nSE finished after {result.iterations} iterations "
        f"({result.evaluations} schedule evaluations), "
        f"B={result.bias:+.2f}, Y={result.y_candidates}"
    )

    # 3. Inspect the best schedule found.
    print(f"\nbest makespan: {result.best_makespan:.1f}\n")
    print(compute_metrics(workload, result.best_schedule).describe())

    # 4. Render it as an ASCII Gantt chart.
    print("\nGantt chart (one row per machine):")
    print(Timeline(result.best_schedule, workload.num_machines).render_ascii())

    # 5. Convergence at a glance.
    from repro.analysis import sparkline

    print("\nschedule length per iteration:")
    print(" " + sparkline(result.trace.current_makespans(), width=70))


if __name__ == "__main__":
    main()
