#!/usr/bin/env python
"""SE vs GA head-to-head under a shared wall-clock budget (paper §5.3).

Reproduces the methodology of Figures 5-7 at a configurable scale: both
algorithms get the same real-time budget on the same workload, and the
best-so-far curves are plotted against time.

Run:  python examples/se_vs_ga.py [--budget SECONDS] [--preset fig5|fig6|fig7]
"""

import argparse

from repro.analysis import Series, line_plot, se_vs_ga
from repro.workloads import (
    figure5_workload,
    figure6_workload,
    figure7_workload,
    small_workload,
)

PRESETS = {
    "small": small_workload,
    "fig5": figure5_workload,
    "fig6": figure6_workload,
    "fig7": figure7_workload,
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--budget", type=float, default=6.0, help="seconds per algorithm")
    ap.add_argument("--preset", choices=sorted(PRESETS), default="fig5")
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    workload = PRESETS[args.preset](seed=args.seed)
    print(workload.describe())
    print(f"\nrunning SE and GA for {args.budget:.1f}s each ...\n")

    cmp = se_vs_ga(
        workload, time_budget=args.budget, grid_points=16, seed=args.seed
    )

    print(
        line_plot(
            [Series(s.name, s.time_grid, s.best_at) for s in cmp.series],
            title=f"best schedule length vs real time — {workload.name}",
            x_label="seconds",
            y_label="schedule length",
        )
    )

    for s in cmp.series:
        print(f"{s.name}: final best = {s.final_best:.1f} after {s.iterations} iterations")

    timeline = cmp.winner_timeline()
    print("\nwinner at each time point:", " ".join(str(w) for w in timeline))
    leader_changes = sum(
        1 for a, b in zip(timeline, timeline[1:]) if a != b and None not in (a, b)
    )
    print(f"lead changes: {leader_changes}")
    print(
        "\npaper's finding: SE wins early on high connectivity / heterogeneity "
        "/ CCR (fig5, fig6); on fig7 (low everything) the outcome is unclear "
        "and GA often leads."
    )


if __name__ == "__main__":
    main()
