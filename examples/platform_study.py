#!/usr/bin/env python
"""The platform axis end to end: priced catalogs, cost-aware search.

Three short acts on one workload:

1. price the deterministic baselines on the "spot" catalog — same
   machines, two objectives (makespan vs dollars);
2. run simulated annealing twice, pure-makespan vs a weighted
   (makespan, cost) objective, and show what the cost term buys;
3. trace the Pareto front with a shared tracker across a small weight
   sweep and pick the cheapest schedule within 1.2x of the best
   makespan.

Run:  python examples/platform_study.py
"""

from repro.analysis.pareto import cheapest_within, pareto_table
from repro.baselines import heft, min_min, olb
from repro.optim import ParetoTracker, SAConfig, run_sa
from repro.optim.evaluation import EvaluationService
from repro.workloads import small_workload

PLATFORM = "spot"


def main() -> None:
    w = small_workload(seed=3)
    print(f"workload: {w.name} ({w.num_tasks} tasks, {w.num_machines} machines)")
    print(f"platform: {PLATFORM!r} (zero-boot, wide price-per-work spread)\n")

    print("deterministic baselines, priced:")
    for fn in (heft, min_min, olb):
        res = fn(w, platform=PLATFORM)
        print(
            f"  {res.name:8s} makespan {res.makespan:8.2f}   "
            f"cost {res.cost:8.2f} usd"
        )

    tracker = ParetoTracker()

    def annealed(objective: str, seed: int):
        service = EvaluationService(
            w,
            platform=PLATFORM,
            objective=objective,
            pareto=tracker,
            prefer_batch=False,
        )
        res = run_sa(
            w,
            SAConfig(
                seed=seed,
                max_iterations=3000,
                record_every=100,
                platform=PLATFORM,
                objective=objective,
            ),
            service=service,
        )
        return service.score_of(res.best_string)

    ref = annealed("makespan", seed=1)
    print(
        f"\nSA, pure makespan:    makespan {ref.makespan:8.2f}   "
        f"cost {ref.cost:8.2f} usd"
    )
    # weights normalized by the reference point: w_cost is the fraction
    # of the scalar devoted to cost
    for i, w_cost in enumerate((0.2, 0.4, 0.6), start=2):
        objective = (
            f"weighted:{(1 - w_cost) / ref.makespan!r}"
            f":{w_cost / ref.cost!r}"
        )
        sc = annealed(objective, seed=i)
        print(
            f"SA, w_cost={w_cost:.1f}:       makespan {sc.makespan:8.2f}   "
            f"cost {sc.cost:8.2f} usd"
        )

    front = tracker.front
    print(f"\npareto front ({len(front)} points from {tracker.offers} offers):")
    print(pareto_table(front, reference=front[0]))
    pick = cheapest_within(front, factor=1.2)
    print(
        f"\ncheapest within 1.2x of best makespan: "
        f"makespan {pick.makespan:.2f} "
        f"({pick.makespan / front[0].makespan:.3f}x), "
        f"cost {pick.cost:.2f} usd"
    )


if __name__ == "__main__":
    main()
