#!/usr/bin/env python
"""Online scheduling service: stream jobs at the cluster, watch it cope.

Demonstrates the event-driven layer on top of the offline simulators:

1. generate a Poisson arrival stream at ~0.7 offered load;
2. run the service with HEFT frontier dispatch under NIC contention;
3. re-run with periodic tabu re-optimisation windows and compare
   flow-time metrics;
4. show that a saved trace replays to the byte.

Run:  python examples/online_service.py
"""

from repro.analysis.online import flow_table, summary_lines
from repro.online import (
    DynamicSimulator,
    ReoptConfig,
    load_trace,
    poisson_stream,
    rate_for_utilisation,
    save_trace,
)
from repro.workloads import WorkloadSpec


def main() -> None:
    # 1. A stream of 12 small jobs: each is its own seeded DAG from the
    #    same declarative class, arriving Poisson at 0.7 utilisation.
    template = WorkloadSpec(num_tasks=12, num_machines=4)
    rate = rate_for_utilisation(template, 0.7)
    stream = poisson_stream(rate, 12, template, seed=2026)
    print(
        f"stream: {len(stream)} jobs, lambda={rate:.5f}, "
        f"last arrival at t={stream.horizon():.1f}"
    )

    # 2. Plain frontier dispatch: every arrival is committed immediately
    #    against the machines as they are.
    plain = DynamicSimulator(stream, network="nic", policy="heft").run()
    print("\n-- frontier dispatch only --")
    for line in summary_lines(plain):
        print(line)

    # 3. Same stream with re-optimisation: every 250 time units the
    #    service rolls back still-pending jobs and lets tabu search
    #    improve the residual schedule.
    reopt = ReoptConfig(interval=250.0, engine="tabu", max_iterations=30)
    tuned = DynamicSimulator(
        stream, network="nic", policy="heft", reopt=reopt, seed=1
    ).run()
    print("\n-- with tabu re-optimisation windows --")
    for line in summary_lines(tuned):
        print(line)
    gain = plain.metrics.mean_flow - tuned.metrics.mean_flow
    print(f"\nmean flow-time change from re-optimisation: {gain:+.1f}")

    print("\nper-job lifecycle (re-optimised run):")
    print(flow_table(tuned))

    # 4. Traces replay exactly: save, load, re-run, compare event logs.
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.json"
        save_trace(stream, path)
        replayed = DynamicSimulator(
            load_trace(path), network="nic", policy="heft", reopt=reopt,
            seed=1,
        ).run()
    identical = replayed.event_log_json() == tuned.event_log_json()
    print(f"\ntrace replay byte-identical: {identical}")
    assert identical


if __name__ == "__main__":
    main()
