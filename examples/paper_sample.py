#!/usr/bin/env python
"""Walkthrough of the paper's running example (Figures 1-2, §2-§4).

Builds the 7-subtask / 2-machine HC model of Figure 1, shows the valid
encoding string of Figure 2, reproduces the O4 goodness computation of
§4.3, and lets SE improve on the hand-made schedule.

Run:  python examples/paper_sample.py
"""

from repro import SEConfig, run_se
from repro.core.goodness import GoodnessEvaluator, optimal_finish_times
from repro.model import FIGURE2_PAIRS, PAPER_O4, paper_sample_workload
from repro.schedule import ScheduleString, Simulator, Timeline, is_valid_for


def main() -> None:
    workload = paper_sample_workload()
    print("The HC model of Figure 1:")
    print(workload.describe())

    print("\nExecution-time matrix E (rows = machines, cols = subtasks):")
    print(workload.exec_times.values)
    print("\nTransfer-time matrix Tr (row = pair (m0,m1), cols = data items):")
    print(workload.transfer_times.values)

    # The encoding string of Figure 2: s0 m0 | s1 m1 | s2 m1 | s5 m1 | ...
    string = ScheduleString.from_pairs(FIGURE2_PAIRS, 2)
    print("\nFigure-2 encoding string:")
    print("  " + " | ".join(f"s{t} m{m}" for t, m in string.pairs()))
    print(f"  valid for the DAG: {is_valid_for(string, workload.graph)}")
    print(f"  m0 executes: {string.machine_sequence(0)}")
    print(f"  m1 executes: {string.machine_sequence(1)}")

    sim = Simulator(workload)
    schedule = sim.evaluate(string)
    print(f"\nSchedule length of the Figure-2 string: {schedule.makespan:.0f}")
    print(Timeline(schedule, 2).render_ascii())

    # §4.3: the optimistic finish times O_i (function F) and goodness.
    o = optimal_finish_times(workload)
    print("\nOptimistic finish times O_i (computed once, before SE starts):")
    for t in range(workload.num_tasks):
        print(f"  O{t} = {o[t]:7.1f}")
    print(f"\nO4 = {o[4]:.0f} — the paper quotes O4 = {PAPER_O4:.0f} (§4.3)")

    goodness = GoodnessEvaluator(workload).goodness(schedule.finish)
    print("\nGoodness g_i = O_i / C_i for the Figure-2 string:")
    for t in range(workload.num_tasks):
        print(
            f"  s{t}: C={schedule.finish[t]:7.1f}  g={goodness[t]:.3f}"
        )

    # Let SE improve on the hand-made solution.
    result = run_se(workload, SEConfig(seed=1, max_iterations=100))
    print(
        f"\nSE best after 100 iterations: {result.best_makespan:.0f} "
        f"(Figure-2 string: {schedule.makespan:.0f})"
    )
    print(Timeline(result.best_schedule, 2).render_ascii())


if __name__ == "__main__":
    main()
